// Package scenario declaratively describes and runs whole simulations: n
// drifting clocks, a delay-bounded authenticated network, a protocol on
// every node, an f-limited mobile adversary, and a metrics recorder. It is
// the engine under every experiment, example and benchmark in this
// repository.
package scenario

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"clocksync/internal/adversary"
	"clocksync/internal/analysis"
	"clocksync/internal/check"
	"clocksync/internal/clock"
	"clocksync/internal/core"
	"clocksync/internal/des"
	"clocksync/internal/metrics"
	"clocksync/internal/network"
	"clocksync/internal/obs"
	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
	"clocksync/internal/trace"
)

// Starter is a protocol node ready to be started. The core Sync node and
// every baseline implement it.
type Starter interface {
	Start()
}

// BuildContext is what a Builder gets for one processor.
type BuildContext struct {
	Harness  *protocol.Harness
	Peers    []int // topology neighbors of this processor
	Index    int
	Scenario *Scenario
	Bounds   analysis.Bounds
	Rand     *rand.Rand
}

// Builder constructs the protocol node for one processor. Scenarios default
// to the paper's Sync protocol; baselines provide their own Builders.
type Builder func(BuildContext) Starter

// Scenario is a complete experiment description.
type Scenario struct {
	Name string
	Seed int64

	N int // processors
	F int // per-period fault budget

	Duration simtime.Duration // simulated real time
	Theta    simtime.Duration // adversary period Θ
	Rho      float64          // hardware drift bound ρ

	// Delay is the network latency model; nil defaults to uniform
	// [δ/10, δ] with δ = 50 ms.
	Delay network.DelayModel
	// Topology defaults to a full mesh on N.
	Topology network.Topology
	// DropProb injects message loss beyond the paper's model.
	DropProb float64

	// SyncInt, MaxWait and WayOff override the derived protocol parameters
	// when non-zero.
	SyncInt simtime.Duration
	MaxWait simtime.Duration
	WayOff  simtime.Duration

	// InitSpread scatters initial biases uniformly over
	// [−InitSpread/2, +InitSpread/2]; InitialBiases (if non-nil) pins them
	// exactly.
	InitSpread    simtime.Duration
	InitialBiases []simtime.Duration
	// Slopes pins hardware clock rates; nil draws them uniformly from the
	// Equation 2 envelope for ρ.
	Slopes []float64
	// Tick, when positive, quantizes every hardware clock's readings to
	// that granularity (real counters tick). It adds up to one Tick of
	// reading error on top of the network-induced ε; keep it well below δ
	// when comparing against the Theorem 5 bounds.
	Tick simtime.Duration

	// Adversary is the corruption schedule; it is validated against (F, Θ)
	// unless UnsafeAdversary is set (experiment E6 deliberately runs
	// over-powered adversaries).
	Adversary       adversary.Schedule
	UnsafeAdversary bool

	// Builder constructs each node; nil means the paper's Sync protocol.
	Builder Builder

	// SamplePeriod for metrics; defaults to 1 s.
	SamplePeriod simtime.Duration
	// SkipValidation disables the Theorem 5 parameter validation (for
	// deliberately out-of-model runs).
	SkipValidation bool
	// TraceWriter, when non-nil, receives a JSON-lines trace of the run
	// (adjustments, corruptions, releases, samples).
	TraceWriter io.Writer

	// Observer, when non-nil, receives the run's observability stream: one
	// shared counter Recorder and a structured event per Sync round,
	// estimation timeout, corruption and release. EventSink attaches one
	// more sink to the run's observer (creating a fresh observer when
	// Observer is nil) — the convenience path for "just give me the events".
	Observer  *obs.Observer
	EventSink obs.Sink
	// SpanSink enables causal round tracing: every Sync execution emits a
	// round span with per-peer estimation, reading and adjustment child
	// spans. Like EventSink it creates a fresh observer when Observer is
	// nil. Tracing costs nothing when unset (see obs.Observer.SpansEnabled).
	SpanSink obs.SpanSink

	// ReuseSim, when non-nil, runs the scenario on this simulator instead of
	// constructing a fresh one: Run resets it to Seed first (des.Sim.Reset),
	// so the run is byte-identical to a fresh-simulator run while reusing the
	// event arena — what lets campaign workers amortize allocation across
	// thousands of runs. The caller must not use the simulator concurrently,
	// and Result.Sim aliases it.
	ReuseSim *des.Sim

	// Shards, when ≥ 1, runs the scenario on the conservative-lookahead
	// parallel simulator (des.ShardedSim) with that many shards; the
	// lookahead is the delay model's MinBound. Shards == 1 exercises the
	// sharded machinery serially — the reference run the shard-count
	// determinism contract is stated against: observable results (reports,
	// stats, traffic totals) are identical for any shard count under
	// continuous delay/drift distributions and adversary-free schedules.
	// A model without a positive MinBound leaves no safe window, so the run
	// silently collapses to one shard. Sharded runs reject the serial-only
	// observability surfaces (Observer/EventSink/SpanSink/TraceWriter/Check):
	// their sinks are not thread-safe. Zero keeps the serial engine.
	Shards int
	// ReuseSharded is ReuseSim's analogue for sharded runs: the simulator is
	// Reset to Seed and reused; its shard count and lookahead (fixed at
	// construction) take precedence over Shards.
	ReuseSharded *des.ShardedSim

	// SamplePeers, when positive, runs Sync in sparse-estimation mode: each
	// node pings a seeded random SamplePeers-of-n subset per round instead of
	// the full mesh (core.Config.SamplePeers; keyed by Seed). Cuts rounds
	// from O(n²) to O(n·k) messages at the price of a wider deviation
	// envelope — E21 measures the trade-off.
	SamplePeers int

	// Check attaches the online invariant checker (internal/check) to the
	// run: every Sync round is asserted against the Theorem 5 deviation
	// envelope, the per-step discontinuity bound and the Equation 3 accuracy
	// envelope, and every release against the Lemma 7(iii) halving schedule.
	// Violations are surfaced in Result.Violations; the run itself is not
	// interrupted. CheckSlack multiplies every checked bound (0 means exact).
	Check      bool
	CheckSlack float64
}

// Result is what a run produces.
type Result struct {
	Scenario *Scenario
	Bounds   analysis.Bounds
	Recorder *metrics.Recorder
	Report   metrics.Report
	// MsgsSent and BytesSent total the network traffic of the run.
	MsgsSent  int
	BytesSent int
	// SyncStats holds per-node protocol counters when the run used the
	// default Sync builder (nil entries otherwise).
	SyncStats []*core.Stats
	// Obs is the observer that instrumented the run (nil when the scenario
	// attached none); EventCounts is its per-kind event tally.
	Obs         *obs.Observer
	EventCounts map[string]int64
	// Sim is the simulator after the run (for follow-up measurement).
	Sim *des.Sim
	// Violations lists every invariant breach the online checker recorded
	// (nil when the scenario did not set Check).
	Violations []check.Violation
}

// Params assembles the analysis parameters for the scenario, applying
// defaults.
func (s *Scenario) Params() analysis.Params {
	delay := s.Delay
	if delay == nil {
		delay = network.NewUniformDelay(5*simtime.Millisecond, 50*simtime.Millisecond)
	}
	delta := delay.Bound()
	maxWait := s.MaxWait
	if maxWait == 0 {
		maxWait = 2 * delta
	}
	syncInt := s.SyncInt
	if syncInt == 0 {
		syncInt = 10 * simtime.Second
	}
	theta := s.Theta
	if theta == 0 {
		theta = 30 * simtime.Minute
	}
	return analysis.Params{
		N:       s.N,
		F:       s.F,
		Rho:     s.Rho,
		Delta:   delta,
		Theta:   theta,
		SyncInt: syncInt,
		MaxWait: maxWait,
	}
}

// shardedIncompat rejects scenario surfaces the parallel engine cannot
// serve: observability sinks, tracing and the online checker are all
// single-threaded consumers wired into shard-local hot paths.
func (s *Scenario) shardedIncompat() error {
	switch {
	case s.Observer != nil || s.EventSink != nil || s.SpanSink != nil:
		return fmt.Errorf("scenario %q: observability sinks are not supported on sharded runs", s.Name)
	case s.TraceWriter != nil:
		return fmt.Errorf("scenario %q: trace writing is not supported on sharded runs", s.Name)
	case s.Check:
		return fmt.Errorf("scenario %q: the online checker is not supported on sharded runs (run the sampled campaign serially instead)", s.Name)
	case s.ReuseSim != nil:
		return fmt.Errorf("scenario %q: ReuseSim is a serial simulator; use ReuseSharded", s.Name)
	}
	return nil
}

// Run executes the scenario and returns its result.
func Run(s Scenario) (*Result, error) {
	if s.N < 1 {
		return nil, fmt.Errorf("scenario %q: need at least one processor", s.Name)
	}
	if s.Duration <= 0 {
		return nil, fmt.Errorf("scenario %q: non-positive duration", s.Name)
	}
	params := s.Params()
	s.Theta = params.Theta
	s.MaxWait = params.MaxWait
	s.SyncInt = params.SyncInt
	if s.Delay == nil {
		s.Delay = network.NewUniformDelay(5*simtime.Millisecond, 50*simtime.Millisecond)
	}
	if s.Topology == nil {
		s.Topology = network.NewFullMesh(s.N)
	}
	if s.Topology.N() != s.N {
		return nil, fmt.Errorf("scenario %q: topology size %d != N %d", s.Name, s.Topology.N(), s.N)
	}
	if s.SamplePeriod == 0 {
		s.SamplePeriod = simtime.Second
	}

	var bounds analysis.Bounds
	if s.SkipValidation {
		// Out-of-model run: derive what is derivable without enforcing the
		// theorem's preconditions.
		bounds = analysis.Bounds{Eps: params.Eps(), T: params.T(), K: params.K(), C: params.C()}
		bounds.MaxDeviation = 16*bounds.Eps + simtime.Duration(18*params.Rho*float64(bounds.T)) + 4*bounds.C
		bounds.MaxStep = bounds.MaxDeviation/2 + bounds.Eps
		bounds.WayOff = bounds.MaxDeviation + bounds.Eps
	} else {
		b, err := analysis.Derive(params)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		bounds = b
	}
	if s.WayOff == 0 {
		s.WayOff = bounds.WayOff
	}

	if !s.UnsafeAdversary {
		if err := s.Adversary.Validate(s.N, s.F, s.Theta); err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	if s.SamplePeers > 0 && s.SamplePeers < 2*s.F+1 {
		return nil, fmt.Errorf("scenario %q: SamplePeers %d < 2f+1 = %d — the trimmed extremes would be unsafe",
			s.Name, s.SamplePeers, 2*s.F+1)
	}

	var ps *des.ShardedSim
	var sim *des.Sim
	var net *network.Network
	var rng *rand.Rand
	if s.Shards >= 1 || s.ReuseSharded != nil {
		if err := s.shardedIncompat(); err != nil {
			return nil, err
		}
		ps = s.ReuseSharded
		if ps != nil {
			ps.Reset(s.Seed)
		} else {
			ps = des.NewSharded(s.Seed, s.Shards, network.MinDelay(s.Delay))
		}
		sim = ps.Global()
		net = network.NewSharded(ps, s.Topology, s.Delay, s.Seed)
		rng = ps.SetupRand()
	} else {
		sim = s.ReuseSim
		if sim != nil {
			sim.Reset(s.Seed)
		} else {
			sim = des.New(s.Seed)
		}
		net = network.New(sim, s.Topology, s.Delay)
		rng = sim.Rand()
	}
	net.DropProb = s.DropProb

	clocks := make([]*clock.Local, s.N)
	harnesses := make([]*protocol.Harness, s.N)
	loSlope, hiSlope := clock.SlopeBounds(s.Rho)
	for i := 0; i < s.N; i++ {
		slope := 1.0
		switch {
		case i < len(s.Slopes):
			slope = s.Slopes[i]
		case s.Rho > 0:
			slope = loSlope + rng.Float64()*(hiSlope-loSlope)
		}
		var bias simtime.Duration
		switch {
		case i < len(s.InitialBiases):
			bias = s.InitialBiases[i]
		case s.InitSpread > 0:
			bias = simtime.Duration((rng.Float64() - 0.5) * float64(s.InitSpread))
		}
		var hw clock.Hardware = clock.NewDrifting(0, simtime.Time(bias), slope)
		if s.Tick > 0 {
			hw = clock.NewQuantized(hw, s.Tick)
		}
		clocks[i] = clock.NewLocal(hw)
		hsim := sim
		if ps != nil {
			hsim = ps.Shard(ps.ShardOf(i))
		}
		harnesses[i] = protocol.NewHarness(i, hsim, net, clocks[i])
	}

	// Warm-up horizon: the guarantees assume a synchronized start; with a
	// scattered InitSpread the cluster needs ~log2(spread/ε) Syncs to
	// converge before steady-state statistics (and invariants) apply.
	warmSyncs := 3.0
	if s.InitSpread > bounds.Eps && bounds.Eps > 0 {
		warmSyncs += math.Ceil(math.Log2(float64(s.InitSpread) / float64(bounds.Eps)))
	}
	skipBefore := simtime.Time(warmSyncs * float64(s.SyncInt))

	rec := metrics.NewRecorder(sim, clocks, s.Adversary, s.Theta)
	if ps != nil {
		// Sharded run: adjustments land in per-node buffers merged after the
		// run; deviation samples come only from the periodic ticker, which
		// runs on the global barrier queue with every shard quiesced.
		rec.EnableSharded()
	} else {
		// Sample at adjustment instants too: discontinuous bias changes happen
		// exactly there, so periodic sampling alone could under-report the
		// worst-case deviation the bounds are checked against.
		rec.SampleOnAdjust(true)
	}
	res := &Result{Scenario: &s, Bounds: bounds, Recorder: rec, Sim: sim,
		SyncStats: make([]*core.Stats, s.N)}

	builder := s.Builder
	if builder == nil {
		builder = defaultBuilder
	}
	var tracer *trace.Tracer
	if s.TraceWriter != nil {
		tracer = trace.New(s.TraceWriter)
	}

	observer := s.Observer
	if s.EventSink != nil {
		if observer == nil {
			observer = obs.NewObserver()
		}
		observer.AddSink(s.EventSink)
	}
	if s.SpanSink != nil {
		if observer == nil {
			observer = obs.NewObserver()
		}
		observer.AddSpanSink(s.SpanSink)
	}
	var checker *check.Checker
	if s.Check {
		if observer == nil {
			observer = obs.NewObserver()
		}
		checker = check.New(check.Config{
			Clocks:     check.FromClocks(clocks),
			Schedule:   s.Adversary,
			Bounds:     bounds,
			Theta:      s.Theta,
			SkipBefore: skipBefore,
			Slack:      s.CheckSlack,
		})
		observer.AddSink(checker)
		checker.Attach(sim)
	}
	res.Obs = observer
	if observer != nil {
		// Bridge measurement samples into the observability stream: the
		// deviation histogram feeds /metrics quantiles, and sample events give
		// trace consumers (tracestat, the dashboard) per-node biases against
		// the Δ envelope.
		orec := observer.Recorder()
		rec.OnSample(func(sm metrics.Sample) {
			if orec != nil {
				orec.Deviation.Observe(float64(sm.Deviation))
			}
			biases := make([]float64, len(sm.Biases))
			for i, b := range sm.Biases {
				biases[i] = float64(b)
			}
			observer.Emit(obs.Event{
				At: float64(sm.At), Kind: obs.KindSample,
				Biases: biases, Deviation: float64(sm.Deviation),
			})
		})
	}

	syncNodes := make([]*core.Node, s.N)
	for i := 0; i < s.N; i++ {
		harnesses[i].Obs = observer
		recHook := rec.AdjustHook(i)
		if tracer != nil {
			i := i
			harnesses[i].OnAdjust = func(at simtime.Time, delta simtime.Duration) {
				recHook(at, delta)
				tracer.Adjust(at, i, delta)
			}
		} else {
			harnesses[i].OnAdjust = recHook
		}
		node := builder(BuildContext{
			Harness:  harnesses[i],
			Peers:    s.Topology.Neighbors(i),
			Index:    i,
			Scenario: &s,
			Bounds:   bounds,
			Rand:     rng,
		})
		if sn, ok := node.(*core.Node); ok {
			syncNodes[i] = sn
		}
		node.Start()
	}

	s.Adversary.Apply(sim, harnesses)
	rec.Start(s.SamplePeriod)
	if ps != nil {
		ps.RunUntil(simtime.Time(s.Duration))
	} else {
		sim.RunUntil(simtime.Time(s.Duration))
	}

	for i, sn := range syncNodes {
		if sn != nil {
			st := sn.Stats()
			res.SyncStats[i] = &st
		}
	}

	res.MsgsSent = net.TotalSent()
	res.BytesSent = net.TotalBytes()
	if rec := observer.Recorder(); rec != nil {
		rec.MessagesSent.Add(int64(net.TotalSent()))
		rec.MessagesReceived.Add(int64(net.TotalDelivered()))
		rec.MessagesDropped.Add(int64(net.TotalDropped()))
		for _, c := range s.Adversary.Corruptions {
			observer.Emit(obs.Event{At: float64(c.From), Kind: obs.KindCorrupt, Node: c.Node})
			observer.Emit(obs.Event{At: float64(c.To), Kind: obs.KindRelease, Node: c.Node})
		}
		res.EventCounts = observer.EventCounts()
	}
	if tracer != nil {
		for _, c := range s.Adversary.Corruptions {
			tracer.Corrupt(c.From, c.Node)
			tracer.Release(c.To, c.Node)
		}
		for _, sample := range rec.Samples() {
			tracer.Sample(sample.At, sample.Biases, sample.Deviation)
		}
		if err := tracer.Flush(); err != nil {
			return nil, fmt.Errorf("scenario %q: writing trace: %w", s.Name, err)
		}
	}
	if checker != nil {
		res.Violations = checker.Violations()
	}
	rec.FinalizeSharded()
	res.Report = rec.BuildReport(metrics.ReportOptions{
		SkipBefore:        skipBefore,
		RecoveryMargin:    bounds.MaxDeviation,
		MinRateWindow:     simtime.MaxDuration(10*s.SyncInt, simtime.Duration(float64(s.Duration)/10)),
		LogicalDriftBound: bounds.LogicalDrift,
	})
	return res, nil
}

// defaultBuilder instantiates the paper's Sync protocol with the derived
// parameters, staggering first executions uniformly across SyncInt.
func defaultBuilder(ctx BuildContext) Starter {
	sc := ctx.Scenario
	return core.New(ctx.Harness, core.Config{
		F:           sc.F,
		SyncInt:     sc.SyncInt,
		MaxWait:     sc.MaxWait,
		WayOff:      sc.WayOff,
		FirstSync:   simtime.Duration(ctx.Rand.Float64() * float64(sc.SyncInt)),
		SamplePeers: sc.SamplePeers,
		SampleSeed:  sc.Seed,
	}, ctx.Peers)
}

// SyncBuilder returns the default Sync builder with an explicit config
// override hook, used by ablation experiments (E11).
func SyncBuilder(mutate func(*core.Config, BuildContext)) Builder {
	return func(ctx BuildContext) Starter {
		sc := ctx.Scenario
		cfg := core.Config{
			F:           sc.F,
			SyncInt:     sc.SyncInt,
			MaxWait:     sc.MaxWait,
			WayOff:      sc.WayOff,
			FirstSync:   simtime.Duration(ctx.Rand.Float64() * float64(sc.SyncInt)),
			SamplePeers: sc.SamplePeers,
			SampleSeed:  sc.Seed,
		}
		if mutate != nil {
			mutate(&cfg, ctx)
		}
		return core.New(ctx.Harness, cfg, ctx.Peers)
	}
}
