package scenario

import (
	"bytes"
	"testing"

	"clocksync/internal/adversary"
	"clocksync/internal/network"
	"clocksync/internal/obs"
	"clocksync/internal/simtime"
)

// The simulator promises bit-for-bit reproducibility: the same seed must
// yield the same event sequence, byte for byte, across two independent runs.
// Shrinking, replay-by-seed and CI triage all rest on this.
func TestRunDeterministicEventStream(t *testing.T) {
	capture := func() []byte {
		var buf bytes.Buffer
		sink := obs.NewJSONL(&buf)
		s := baseScenario()
		s.Delay = network.SpikyDelay{
			Base:      network.NewUniformDelay(5*simtime.Millisecond, 25*simtime.Millisecond),
			SpikeProb: 0.05,
			SpikeMax:  25 * simtime.Millisecond,
		}
		s.DropProb = 0.01
		s.Adversary = adversary.Schedule{Corruptions: []adversary.Corruption{
			{Node: 3, From: 320, To: 360,
				Behavior: adversary.RandomLiar{Amplitude: simtime.Second}},
		}}
		s.EventSink = sink
		s.Check = true
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Violations {
			t.Errorf("honest run violated an invariant: %s", v)
		}
		return buf.Bytes()
	}

	first := capture()
	second := capture()
	if len(first) == 0 {
		t.Fatal("run emitted no events")
	}
	if !bytes.Equal(first, second) {
		i := 0
		for i < len(first) && i < len(second) && first[i] == second[i] {
			i++
		}
		t.Fatalf("event streams diverge at byte %d of %d/%d", i, len(first), len(second))
	}
}
