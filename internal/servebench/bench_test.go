package servebench

import (
	"sort"
	"testing"
	"time"

	"clocksync/internal/livenet"
)

func BenchmarkNodeRead(b *testing.B)         { NodeRead(b) }
func BenchmarkServePacketCodec(b *testing.B) { ServePacketCodec(b) }
func BenchmarkServeMemTransport(b *testing.B) {
	ServeMemTransport(b)
}

// The budget pins below run in plain `go test`, so a serving-path regression
// fails CI without anyone comparing benchmark output by hand.
// BENCH_serve.json records the corresponding ns/op baselines.

// TestNodeReadAllocFree pins the lock-free read design: a Read is one atomic
// pointer load plus arithmetic, never an allocation.
func TestNodeReadAllocFree(t *testing.T) {
	r := testing.Benchmark(NodeRead)
	if a := r.AllocsPerOp(); a != 0 {
		t.Errorf("Read allocates: %d allocs/op, want 0", a)
	}
}

// TestServePacketCodecAllocFree pins the wire codec: encoding into a caller
// buffer and decoding into a value never allocates.
func TestServePacketCodecAllocFree(t *testing.T) {
	r := testing.Benchmark(ServePacketCodec)
	if a := r.AllocsPerOp(); a != 0 {
		t.Errorf("codec allocates: %d allocs/op, want 0", a)
	}
}

// TestReadLatency pins the serving latency budget from the issue: in-process
// Read p99 under one microsecond. Sampled with per-call wall timing on a
// single goroutine — the wait-free design means contention cannot make the
// parallel case slower per call.
func TestReadLatency(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation dominates sub-microsecond timings")
	}
	mn := livenet.NewMemNetwork(livenet.MemNetworkConfig{})
	n := newServingNodeT(t, mn)
	defer n.Close()

	const samples = 20000
	lat := make([]time.Duration, samples)
	var sink livenet.Reading
	for i := range lat {
		t0 := time.Now()
		sink = n.Read()
		lat[i] = time.Since(t0)
	}
	_ = sink
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50, p99 := lat[samples/2], lat[samples*99/100]
	t.Logf("Read latency: p50 %v, p99 %v", p50, p99)
	if p99 >= time.Microsecond {
		t.Errorf("Read p99 %v, budget < 1µs", p99)
	}
}

// newServingNodeT is newServingNode for tests.
func newServingNodeT(t *testing.T, mn *livenet.MemNetwork) *livenet.Node {
	t.Helper()
	n, err := livenet.New(livenet.Config{
		ID:        0,
		Transport: mn.Transport(0),
		SyncInt:   time.Second,
		MaxWait:   100 * time.Millisecond,
		WayOff:    5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}
