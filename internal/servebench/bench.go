// Package servebench holds the time-serving benchmark bodies, shared between
// `go test -bench` and cmd/benchserve, which runs them standalone and records
// the JSON baseline BENCH_serve.json.
//
// They cover the three layers a served reading crosses: the wait-free
// in-process read (NodeRead — the path every co-located consumer and the
// serve loop itself take), the binary wire codec (ServePacketCodec), and the
// full query round-trip against a node over the in-process datagram fabric
// (ServeMemTransport — the loopback qps number the baseline pins). The
// companion tests pin the alloc and latency budgets so a regression fails
// plain `go test`, not only a benchmark comparison.
package servebench

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"clocksync/internal/livenet"
)

// newServingNode builds one node on a fresh MemNetwork and starts only its
// serve plumbing-relevant state (the node is not Run; Read works from New,
// and answering is driven directly for the transport benchmark).
func newServingNode(b *testing.B, mn *livenet.MemNetwork) *livenet.Node {
	b.Helper()
	n, err := livenet.New(livenet.Config{
		ID:        0,
		Transport: mn.Transport(0),
		SyncInt:   time.Second,
		MaxWait:   100 * time.Millisecond,
		WayOff:    5 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// NodeRead measures the wait-free snapshot read under full parallelism —
// the in-process serving hot path. Budget: 0 allocs/op, and p99 well under a
// microsecond (TestReadLatency pins it).
func NodeRead(b *testing.B) {
	mn := livenet.NewMemNetwork(livenet.MemNetworkConfig{})
	n := newServingNode(b, mn)
	defer n.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var sink livenet.Reading
		for pb.Next() {
			sink = n.Read()
		}
		_ = sink
	})
}

// ServePacketCodec measures one query decode + reply encode — the per-packet
// CPU the serve loop spends beyond the two snapshot reads.
func ServePacketCodec(b *testing.B) {
	var qbuf [livenet.ServeQuerySize]byte
	var rbuf [livenet.ServeReplySize]byte
	pkt := livenet.EncodeServeQuery(qbuf[:], livenet.ServeQuery{Nonce: 7, T1: 1234567890})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := livenet.DecodeServeQuery(pkt)
		if err != nil {
			b.Fatal(err)
		}
		livenet.EncodeServeReply(rbuf[:], livenet.ServeReply{
			Nonce: q.Nonce, T1: q.T1, T2: q.T1 + 1, T3: q.T1 + 2,
			Uncertainty: time.Millisecond, Epoch: 1, Node: 0,
		})
	}
}

// ServeMemTransport measures served queries against a running node over the
// in-process datagram fabric. Each parallel worker owns a client endpoint
// and keeps a window of queries in flight — the server-eye view of many
// concurrent clients, so the number measures server capacity rather than a
// single client's ping-pong latency. 1e9/ns_per_op is the loopback
// queries-per-second a single node sustains — the number BENCH_serve.json
// pins (acceptance floor: 1M qps).
func ServeMemTransport(b *testing.B) {
	mn := livenet.NewMemNetwork(livenet.MemNetworkConfig{})
	n := newServingNode(b, mn)
	defer n.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go n.Run(ctx)

	var workerID atomic.Int64
	workerID.Store(99) // client endpoints start above any node id
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tr := mn.Transport(int(workerID.Add(1)))
		defer tr.Close()
		// The window must stay under the endpoints' inbox capacity (512) or
		// the fabric drops packets, UDP-style, and a read below blocks on a
		// reply that never comes.
		const window = 64
		server := livenet.MemAddr(0)
		var qbuf [livenet.ServeQuerySize]byte
		rbuf := make([]byte, livenet.ServeReplySize)
		var nonce uint64
		outstanding := 0
		read := func() {
			nr, _, err := tr.ReadFrom(rbuf)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := livenet.DecodeServeReply(rbuf[:nr]); err != nil {
				b.Fatal(err)
			}
			outstanding--
		}
		for pb.Next() {
			nonce++
			pkt := livenet.EncodeServeQuery(qbuf[:], livenet.ServeQuery{
				Nonce: nonce, T1: time.Now().UnixNano(),
			})
			if err := tr.WriteTo(pkt, server); err != nil {
				b.Fatal(err)
			}
			outstanding++
			if outstanding >= window {
				read()
			}
		}
		for outstanding > 0 {
			read()
		}
	})
}
