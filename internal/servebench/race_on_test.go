//go:build race

package servebench

const raceEnabled = true
