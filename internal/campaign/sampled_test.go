package campaign

import (
	"strings"
	"testing"
)

// TestSampledCampaign drives the sparse-estimation mode through the full
// campaign machinery: randomized delay models, drop rates and mobile
// corruption schedules, every run asserted against the Theorem 5 envelope
// by the online checker. N=16 with k=7 means each round really samples
// (7 < 15 peers) while keeping k ≥ 2F+1 = 5.
func TestSampledCampaign(t *testing.T) {
	res, err := Run(Config{N: 16, F: 2, SamplePeers: 7, Runs: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 10 {
		t.Fatalf("completed %d/10 runs", res.Completed)
	}
	if len(res.Failures) > 0 {
		t.Fatalf("sampled runs violated checked invariants: %+v", res.Failures)
	}
}

// TestSampledCampaignRejectsUnsafeK: k below 2F+1 cannot trim f from both
// sides; the configuration must fail loudly, not run quietly wrong.
func TestSampledCampaignRejectsUnsafeK(t *testing.T) {
	res, err := Run(Config{N: 16, F: 2, SamplePeers: 3, Runs: 1, Seed: 1})
	if err == nil {
		t.Fatalf("unsafe sampling config ran: res=%+v", res)
	}
	if !strings.Contains(err.Error(), "2f+1") {
		t.Errorf("error does not name the 2f+1 floor: %v", err)
	}
}
