package campaign

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"clocksync/internal/adversary"
	"clocksync/internal/core"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// Family names one adversary scenario family: a themed generator that
// expands a seed into a scenario probing one specific stress axis, in
// contrast to the generic generator's uniform draw over the whole fault
// palette. Families are how a campaign is aimed: `-family flash` spends
// every run on flash-recovery crowds instead of finding one by chance.
type Family string

// The named families. Each is grounded in the paper or the related work the
// ROADMAP cites (see the per-generator comments below).
const (
	// FamilyGeneric is the original campaign generator: random delay model,
	// drop rate, spread and an f-limited schedule drawn from the full fault
	// palette.
	FamilyGeneric Family = "generic"
	// FamilyDelaySkew is the packet-preserving asymmetric link-delay attack
	// (network.SkewedDelay): no drops, no corruptions — only RTT asymmetry
	// targeting the Marzullo midpoint. Hostile variant delayskew!: the
	// model lies about its δ bound.
	FamilyDelaySkew Family = "delayskew"
	// FamilyChurn is a sustained corrupt/release stream pinned exactly at
	// the Definition 2 f-per-Θ budget boundary (adversary.Churn). Hostile
	// variant churn!: f+1 simultaneous liars — over budget, rejected by
	// Validate, flagged by the checker when forced through.
	FamilyChurn Family = "churn"
	// FamilyFlash releases all f faulty processors simultaneously — the
	// flash-recovery crowd whose rejoin-time tail Lemma 7(iii) bounds.
	FamilyFlash Family = "flash"
	// FamilyColdStart begins from arbitrary initial clock states (spreads
	// far beyond the generic δ-scale scatter), probing distance from the
	// self-stabilizing variants (Daliot–Dolev–Parnas).
	FamilyColdStart Family = "coldstart"
)

// FamilyWeight is one entry of a campaign mix: a family, its relative draw
// weight, and whether to run its designed-to-fail (hostile) variant.
type FamilyWeight struct {
	Family  Family
	Weight  int
	Hostile bool
}

// String renders the entry's canonical name: the family, with a "!" suffix
// for the hostile variant.
func (w FamilyWeight) String() string {
	if w.Hostile {
		return string(w.Family) + "!"
	}
	return string(w.Family)
}

// FamilyMix is a weighted set of families; each campaign run draws one entry
// with probability proportional to its weight. An empty mix means the
// generic generator only (the pre-family default).
type FamilyMix []FamilyWeight

// ParseFamilyMix parses a -family flag value: comma-separated family names,
// each optionally weighted `name:weight` (default weight 1) and optionally
// suffixed `!` for the family's designed-to-fail variant. Examples:
//
//	delayskew
//	delayskew:2,churn,flash,coldstart
//	churn!            (over-budget variant; violations expected)
//
// The returned mix is always validated: an invalid spec yields an error,
// never a zero-value family.
func ParseFamilyMix(spec string) (FamilyMix, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("campaign: empty family spec")
	}
	var mix FamilyMix
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("campaign: empty family entry in %q", spec)
		}
		name, weightStr, hasWeight := strings.Cut(entry, ":")
		weight := 1
		if hasWeight {
			w, err := strconv.Atoi(strings.TrimSpace(weightStr))
			if err != nil {
				return nil, fmt.Errorf("campaign: family %q: bad weight %q", name, weightStr)
			}
			weight = w
		}
		name = strings.TrimSpace(name)
		hostile := strings.HasSuffix(name, "!")
		mix = append(mix, FamilyWeight{
			Family:  Family(strings.TrimSuffix(name, "!")),
			Weight:  weight,
			Hostile: hostile,
		})
	}
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	return mix, nil
}

// Validate rejects unknown families, hostile variants that do not exist,
// non-positive weights, and duplicate entries. An empty mix is valid (it
// means generic-only).
func (m FamilyMix) Validate() error {
	seen := make(map[string]bool, len(m))
	for _, w := range m {
		switch w.Family {
		case FamilyGeneric, FamilyDelaySkew, FamilyChurn, FamilyFlash, FamilyColdStart:
		default:
			return fmt.Errorf("campaign: unknown adversary family %q (have generic, delayskew, churn, flash, coldstart)", w.Family)
		}
		if w.Hostile && w.Family != FamilyDelaySkew && w.Family != FamilyChurn {
			return fmt.Errorf("campaign: family %q has no hostile variant (only delayskew! and churn!)", w.Family)
		}
		if w.Weight <= 0 {
			return fmt.Errorf("campaign: family %q has non-positive weight %d", w.String(), w.Weight)
		}
		if seen[w.String()] {
			return fmt.Errorf("campaign: family %q listed twice", w.String())
		}
		seen[w.String()] = true
	}
	return nil
}

// String renders the mix back into ParseFamilyMix's syntax.
func (m FamilyMix) String() string {
	parts := make([]string, len(m))
	for i, w := range m {
		parts[i] = w.String()
		if w.Weight != 1 {
			parts[i] += ":" + strconv.Itoa(w.Weight)
		}
	}
	return strings.Join(parts, ",")
}

// pickFamily chooses the family for one seed. The choice is drawn from its
// own seed-keyed stream, separate from the scenario generator's rng: a
// single-family replay of a failing mixed-campaign seed then consumes the
// scenario stream identically, so `-family churn -seed N` reproduces the
// churn scenario a mixed campaign produced for seed N bit-for-bit.
func (c Config) pickFamily(seed int64) FamilyWeight {
	if len(c.Families) == 0 {
		return FamilyWeight{Family: FamilyGeneric, Weight: 1}
	}
	if len(c.Families) == 1 {
		return c.Families[0]
	}
	total := 0
	for _, w := range c.Families {
		total += w.Weight
	}
	rng := rand.New(rand.NewSource(seed*0x51ED2701 + 0x2545F491))
	k := rng.Intn(total)
	for _, w := range c.Families {
		if k < w.Weight {
			return w
		}
		k -= w.Weight
	}
	return c.Families[len(c.Families)-1]
}

// familyScenario expands one non-generic family draw into a scenario. The
// shared skeleton matches the generic generator (same n/f/Θ/δ-derived
// parameters, checker on); each family fills in its delay model, schedule
// and spread, and may return a per-node config mutation (the hostile
// delayskew variant widens victims' estimation timeout so the skewed
// readings are accepted rather than timed out).
func (c Config) familyScenario(fw FamilyWeight, seed int64, rng *rand.Rand) scenario.Scenario {
	s := scenario.Scenario{
		Name:     "campaign/" + fw.String(),
		Seed:     seed,
		N:        c.N,
		F:        c.F,
		Duration: c.Duration,
		Theta:    c.Theta,
		Rho:      c.Rho,
		SyncInt:  c.SyncInt,
		// Pinned to the campaign-level 2δ for the same tie-breaking reason
		// as the generic generator (see Scenario).
		MaxWait:     2 * c.Delta,
		SamplePeers: c.SamplePeers,
		Check:       true,
	}
	var mutate func(*core.Config, scenario.BuildContext)
	switch fw.Family {
	case FamilyDelaySkew:
		mutate = c.delaySkew(&s, rng, fw.Hostile)
	case FamilyChurn:
		c.churn(&s, rng, fw.Hostile)
	case FamilyFlash:
		c.flash(&s, rng)
	case FamilyColdStart:
		c.coldStart(&s, rng)
	default:
		panic(fmt.Sprintf("campaign: familyScenario(%q)", fw.Family))
	}
	switch {
	case mutate != nil && c.Mutate != nil:
		fam, user := mutate, c.Mutate
		s.Builder = scenario.SyncBuilder(func(cfg *core.Config, ctx scenario.BuildContext) {
			fam(cfg, ctx)
			user(cfg, ctx)
		})
	case mutate != nil:
		s.Builder = scenario.SyncBuilder(mutate)
	case c.Mutate != nil:
		s.Builder = scenario.SyncBuilder(c.Mutate)
	}
	return s
}

// delaySkew configures the DelaySkew family: no corruptions, no drops — the
// network itself is the adversary (network.SkewedDelay). A reading here is
// an interval: over = offset + d_req, under = offset − d_rep (Definition 4),
// and with non-negative delays every interval contains the true offset no
// matter how asymmetric the link — so the trimmed Marzullo midpoint can only
// be pulled as far as the widest accepted interval reaches. Honestly
// parameterized (Slow ≤ δ, both groups ≥ f+1), that reach is ≤ δ/2, deep
// inside the Theorem 5 envelope: the checker must stay quiet while the
// attack does its worst.
//
// Truthful intervals also mean a delay-only adversary cannot displace a
// synchronized clock at all — Figure 1's own-clock clamp keeps delta at 0
// while 0 ∈ [mm, m] — so the out-of-δ variant (delayskew!) attacks the one
// thing skew can deny: the message exchange itself. A single victim's links
// are skewed to σ·δ (σ ∈ [40, 80]) while the model declares δ, putting every
// round trip past the 2δ estimation timeout: the victim's rounds starve and
// its clock can only coast. Then one scheduled clock smash makes the
// starvation visible — the released victim has no estimates to converge
// with, its distance never halves, and the checker's Lemma 7(iii) recovery
// checkpoints (then, Θ later, the deviation envelope) flag it on every
// seed.
func (c Config) delaySkew(s *scenario.Scenario, rng *rand.Rand, hostile bool) func(*core.Config, scenario.BuildContext) {
	boundary := c.N / 2
	if span := c.N - 2*c.F - 1; span >= 1 {
		// Both groups keep ≥ f+1 members: neither side can trim away all of
		// the other's estimates, so the skew bites symmetrically.
		boundary = c.F + 1 + rng.Intn(span)
	}
	model := network.SkewedDelay{
		Boundary: boundary,
		Slow:     c.Delta - simtime.Duration(rng.Float64()*float64(c.Delta)/16),
		Fast:     c.Delta / 64,
		InGroup:  network.NewUniformDelay(c.Delta/20, c.Delta/2),
	}
	s.InitSpread = simtime.Duration(rng.Float64() * float64(c.InitSpread))
	if !hostile {
		s.Delay = model
		return nil
	}
	sigma := 40 + 40*rng.Float64()
	model.Boundary = 1 // group A = the single victim, node 0
	model.Slow = simtime.Duration(sigma * float64(c.Delta))
	model.Declared = c.Delta
	s.Delay = model
	// The smash that exposes the starvation: the victim is released with an
	// offset it can never converge away, because every one of its round
	// trips exceeds MaxWait. Offsets start at 4 s ≫ 2(C+ε), so the k=1
	// halving checkpoint alone is already conclusive.
	sign := simtime.Duration(1)
	if rng.Intn(2) == 0 {
		sign = -1
	}
	from := simtime.Time(2 * c.Theta)
	s.Adversary = adversary.Static([]int{0}, from, from.Add(2*c.SyncInt),
		func(int) protocol.Behavior {
			return adversary.ClockSmash{
				Offset: sign * logUniform(rng, 4*simtime.Second, 60*simtime.Second),
				Quiet:  true,
			}
		})
	return nil
}

// churn configures the ChurnBudget family: a sustained corrupt/release
// stream (adversary.Churn) pinned 1 ms inside the exact f-per-Θ budget
// boundary, behaviors drawn from the full palette. The hostile variant goes
// 1 over budget in the most damaging shape: f+1 processors simultaneously
// running ConsistentLiar with one shared offset Ω — every good node's
// trimmed midpoint then chases Ω/2 while n−(f+1) good processors remain for
// the checker to watch. Validate rejects that schedule; the campaign forces
// it through (UnsafeAdversary) precisely to prove the checker flags what the
// validator cannot vet.
func (c Config) churn(s *scenario.Scenario, rng *rand.Rand, hostile bool) {
	s.Delay = c.randomDelay(rng)
	s.DropProb = c.DropProb * rng.Float64()
	s.InitSpread = simtime.Duration(rng.Float64() * float64(c.InitSpread))
	if hostile {
		sign := simtime.Duration(1)
		if rng.Intn(2) == 0 {
			sign = -1
		}
		omega := sign * logUniform(rng, 4*simtime.Second, 60*simtime.Second)
		victims := rng.Perm(c.N)[:c.F+1]
		from := simtime.Time(2 * c.Theta)
		s.Adversary = adversary.Static(victims, from, from.Add(c.Theta/2),
			func(int) protocol.Behavior { return adversary.ConsistentLiar{Offset: omega} })
		s.UnsafeAdversary = true
		return
	}
	minDwell := c.SyncInt
	maxDwell := simtime.Duration(float64(c.Theta) / float64(2*c.F))
	if maxDwell < 2*c.SyncInt {
		maxDwell = 2 * c.SyncInt
	}
	dwell := minDwell + simtime.Duration(rng.Float64()*float64(maxDwell-minDwell))
	// Leave Θ of quiet tail so the final release's recovery is observable.
	s.Adversary = adversary.Churn(c.N, c.F,
		simtime.Time(2*c.Theta), simtime.Time(c.Duration-c.Theta),
		dwell, c.Theta, simtime.Millisecond,
		func(int) protocol.Behavior { return c.randomBehavior(rng) })
}

// flash configures the FlashRecovery family: waves in which all f
// processors of the period are corrupted together (quiet clock smashes with
// log-uniform offsets) and released at the same instant — the rejoin crowd
// whose recovery-time tail Lemma 7(iii) bounds, and the checker's
// per-release halving checkpoints measure. Waves are spaced Θ+dwell+SyncInt
// apart, so each wave's extended windows clear before the next and the
// schedule sits exactly at the f-per-window boundary.
func (c Config) flash(s *scenario.Scenario, rng *rand.Rand) {
	s.Delay = c.randomDelay(rng)
	s.InitSpread = simtime.Duration(rng.Float64() * float64(c.InitSpread))
	dwell := 2 * c.SyncInt
	stride := c.Theta + dwell + c.SyncInt
	latest := simtime.Time(c.Duration - c.Theta - dwell)
	var sched adversary.Schedule
	for at := simtime.Time(2 * c.Theta); at <= latest; at = at.Add(stride) {
		victims := rng.Perm(c.N)[:c.F]
		wave := adversary.Static(victims, at, at.Add(dwell), func(int) protocol.Behavior {
			sign := simtime.Duration(1)
			if rng.Intn(2) == 0 {
				sign = -1
			}
			return adversary.ClockSmash{
				Offset: sign * logUniform(rng, 100*simtime.Millisecond, 60*simtime.Second),
				Quiet:  true,
			}
		})
		sched.Corruptions = append(sched.Corruptions, wave.Corruptions...)
	}
	s.Adversary = sched
}

// coldStart configures the ColdStart family: no corruptions, but arbitrary
// initial clock states — spreads log-uniform in [1 s, 300 s], decades beyond
// the generic campaign's δ-scale scatter. scenario.Run's warm-up horizon
// scales with InitSpread (≈ log₂(spread/ε) sync intervals), so the checker
// engages exactly when convergence is due: a protocol that fails to contract
// from an arbitrary state still fails the run.
func (c Config) coldStart(s *scenario.Scenario, rng *rand.Rand) {
	s.Delay = c.randomDelay(rng)
	s.InitSpread = logUniform(rng, simtime.Second, 300*simtime.Second)
}

// DisableVictimRecovery is the Lemma 7(iii) teeth-check mutation: every
// processor the schedule ever corrupts has its Sync interval inflated 1000×,
// so after release it keeps its wrecked clock instead of halving its
// distance every T. A FlashRecovery campaign run with this mutation must
// report recovery (and, for large offsets, deviation) violations — a checker
// that stays quiet has lost its teeth. Wired to synccampaign
// -mutate-recovery.
func DisableVictimRecovery(cfg *core.Config, ctx scenario.BuildContext) {
	for _, cor := range ctx.Scenario.Adversary.Corruptions {
		if cor.Node == ctx.Index {
			cfg.SyncInt *= 1000
			return
		}
	}
}
