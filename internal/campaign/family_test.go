package campaign

import (
	"reflect"
	"testing"

	"clocksync/internal/check"
	"clocksync/internal/network"
	"clocksync/internal/simtime"
)

// allFamilies lists the honest named families (generic excluded: it is the
// pre-family default and covered by campaign_test.go).
var allFamilies = []Family{FamilyDelaySkew, FamilyChurn, FamilyFlash, FamilyColdStart}

func soloMix(fam Family, hostile bool) FamilyMix {
	return FamilyMix{{Family: fam, Weight: 1, Hostile: hostile}}
}

func TestParseFamilyMix(t *testing.T) {
	valid := []struct {
		spec string
		want string // canonical String() rendering
	}{
		{"delayskew", "delayskew"},
		{"generic", "generic"},
		{"delayskew:2,churn,flash,coldstart", "delayskew:2,churn,flash,coldstart"},
		{"churn!", "churn!"},
		{"delayskew!:3", "delayskew!:3"},
		{" churn , flash ", "churn,flash"},
		{"churn,churn!", "churn,churn!"}, // distinct canonical names
	}
	for _, tc := range valid {
		mix, err := ParseFamilyMix(tc.spec)
		if err != nil {
			t.Errorf("ParseFamilyMix(%q): %v", tc.spec, err)
			continue
		}
		if got := mix.String(); got != tc.want {
			t.Errorf("ParseFamilyMix(%q).String() = %q, want %q", tc.spec, got, tc.want)
		}
		// The canonical rendering must parse back to the identical mix.
		again, err := ParseFamilyMix(mix.String())
		if err != nil {
			t.Errorf("round-trip of %q: %v", tc.spec, err)
		} else if !reflect.DeepEqual(mix, again) {
			t.Errorf("round-trip of %q: %+v vs %+v", tc.spec, mix, again)
		}
	}

	invalid := []string{
		"",
		"   ",
		"bogus",
		"flash!",     // no hostile variant
		"coldstart!", // no hostile variant
		"generic!",   // no hostile variant
		"churn:0",
		"churn:-2",
		"churn:x",
		"churn:",
		"churn,churn", // duplicate
		",",
		"churn,,flash",
		"delayskew:2:3",
	}
	for _, spec := range invalid {
		mix, err := ParseFamilyMix(spec)
		if err == nil {
			t.Errorf("ParseFamilyMix(%q) accepted as %+v", spec, mix)
		}
	}
}

// Every honest family must expand every seed into a scenario whose schedule
// is valid under Definition 2 and whose delay model keeps its declared δ —
// the same by-construction promises the generic generator makes.
func TestFamilyScenariosValid(t *testing.T) {
	for _, fam := range allFamilies {
		cfg := Config{Families: soloMix(fam, false)}.withDefaults()
		for seed := int64(0); seed < 80; seed++ {
			s := cfg.Scenario(seed)
			if want := "campaign/" + string(fam); s.Name != want {
				t.Fatalf("%s seed %d: scenario named %q, want %q", fam, seed, s.Name, want)
			}
			if err := s.Adversary.Validate(cfg.N, cfg.F, cfg.Theta); err != nil {
				t.Fatalf("%s seed %d: schedule invalid: %v", fam, seed, err)
			}
			if b := s.Delay.Bound(); b > cfg.Delta {
				t.Fatalf("%s seed %d: delay bound %v exceeds δ=%v", fam, seed, b, cfg.Delta)
			}
			switch fam {
			case FamilyDelaySkew, FamilyColdStart:
				if len(s.Adversary.Corruptions) != 0 {
					t.Fatalf("%s seed %d: unexpected corruptions %d", fam, seed, len(s.Adversary.Corruptions))
				}
			case FamilyChurn:
				// The stream must be long enough to pin the budget boundary:
				// fewer than f+1 break-ins never fill a Θ-window.
				if got := len(s.Adversary.Corruptions); got <= cfg.F {
					t.Fatalf("churn seed %d: only %d corruptions", seed, got)
				}
			case FamilyFlash:
				got := len(s.Adversary.Corruptions)
				if got < 2*cfg.F || got%cfg.F != 0 {
					t.Fatalf("flash seed %d: %d corruptions, want ≥ 2 full waves of f=%d", seed, got, cfg.F)
				}
			}
			if fam == FamilyColdStart && s.InitSpread < simtime.Second {
				t.Fatalf("coldstart seed %d: spread %v below the arbitrary-state floor", seed, s.InitSpread)
			}
		}
	}
}

// Hostile variants must be shaped exactly as advertised: churn! is over
// budget (invalid, forced through via UnsafeAdversary), delayskew! lies
// about its δ bound while actually delivering σ·δ.
func TestHostileFamilyShapes(t *testing.T) {
	churnCfg := Config{Families: soloMix(FamilyChurn, true)}.withDefaults()
	for seed := int64(0); seed < 40; seed++ {
		s := churnCfg.Scenario(seed)
		if !s.UnsafeAdversary {
			t.Fatalf("churn! seed %d: UnsafeAdversary not set", seed)
		}
		if got := len(s.Adversary.Corruptions); got != churnCfg.F+1 {
			t.Fatalf("churn! seed %d: %d corruptions, want f+1=%d", seed, got, churnCfg.F+1)
		}
		if err := s.Adversary.Validate(churnCfg.N, churnCfg.F, churnCfg.Theta); err == nil {
			t.Fatalf("churn! seed %d: over-budget schedule passed Validate", seed)
		}
	}

	skewCfg := Config{Families: soloMix(FamilyDelaySkew, true)}.withDefaults()
	for seed := int64(0); seed < 40; seed++ {
		s := skewCfg.Scenario(seed)
		model, ok := s.Delay.(network.SkewedDelay)
		if !ok {
			t.Fatalf("delayskew! seed %d: delay model %T", seed, s.Delay)
		}
		if model.Declared != skewCfg.Delta || model.Bound() != skewCfg.Delta {
			t.Fatalf("delayskew! seed %d: declared bound %v, want the lie δ=%v", seed, model.Bound(), skewCfg.Delta)
		}
		if model.Slow <= skewCfg.Delta {
			t.Fatalf("delayskew! seed %d: Slow %v not beyond δ=%v", seed, model.Slow, skewCfg.Delta)
		}
		// The visibility smash is in budget: the checker, not the validator,
		// must be what catches this family.
		if err := s.Adversary.Validate(skewCfg.N, skewCfg.F, skewCfg.Theta); err != nil {
			t.Fatalf("delayskew! seed %d: smash schedule invalid: %v", seed, err)
		}
	}
}

// Replay contract: the family picked for a seed inside a weighted mix, run
// as a single-family campaign, reproduces the identical scenario — the
// `-runs 1 -seed N -family <fam>` line printed with every failure works.
func TestFamilyMixReplay(t *testing.T) {
	mix, err := ParseFamilyMix("delayskew:2,churn,flash,coldstart,churn!")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Families: mix}.withDefaults()
	picked := map[string]int{}
	for seed := int64(0); seed < 60; seed++ {
		fw := cfg.pickFamily(seed)
		picked[fw.String()]++
		mixed := cfg.Scenario(seed)
		solo := cfg
		solo.Families = soloMix(fw.Family, fw.Hostile)
		replay := solo.Scenario(seed)
		if mixed.Name != replay.Name ||
			!reflect.DeepEqual(mixed.Adversary, replay.Adversary) ||
			!reflect.DeepEqual(mixed.Delay, replay.Delay) ||
			mixed.InitSpread != replay.InitSpread ||
			mixed.DropProb != replay.DropProb {
			t.Fatalf("seed %d family %s: single-family replay differs from mixed draw", seed, fw)
		}
		again := cfg.Scenario(seed)
		if !reflect.DeepEqual(mixed.Adversary, again.Adversary) ||
			!reflect.DeepEqual(mixed.Delay, again.Delay) {
			t.Fatalf("seed %d: family scenario not deterministic", seed)
		}
	}
	// Every entry of the mix must actually be drawn over 60 seeds.
	for _, w := range mix {
		if picked[w.String()] == 0 {
			t.Errorf("family %s never picked across 60 seeds", w)
		}
	}
}

// Run rejects an invalid mix up front instead of running a zero-value family.
func TestRunRejectsInvalidMix(t *testing.T) {
	_, err := Run(Config{Runs: 1, Families: FamilyMix{{Family: "bogus", Weight: 1}}})
	if err == nil {
		t.Fatal("campaign with an unknown family started")
	}
}

// The acceptance bar for the honest families: every run of every family is
// clean under the Theorem 5 checker. Full mode runs the issue's 250 seeds per
// family; -short keeps a 50-seed smoke.
func TestHonestFamiliesClean(t *testing.T) {
	runs := 250
	if testing.Short() {
		runs = 50
	}
	for _, fam := range allFamilies {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			res, err := Run(Config{Runs: runs, Seed: 1, Families: soloMix(fam, false)})
			if err != nil {
				t.Fatalf("campaign error: %v", err)
			}
			if res.Completed != runs {
				t.Fatalf("completed %d of %d runs", res.Completed, runs)
			}
			if len(res.PerFamily) != 1 || res.PerFamily[0].Runs != runs {
				t.Fatalf("per-family accounting %+v, want all %d runs under %s", res.PerFamily, runs, fam)
			}
			for _, f := range res.Failures {
				t.Errorf("seed %d: %d violations on the honest %s family; first: %s",
					f.Seed, len(f.Violations), fam, f.Violations[0])
			}
		})
	}
}

// churn! — f+1 simultaneous consistent liars — must be flagged on every
// seed, attributed to the family, and shrink to a reproducer that still
// needs more than f corruptions (fewer would be inside the budget the
// protocol tolerates).
func TestChurnOverBudgetFlagged(t *testing.T) {
	cfg := Config{Runs: 6, Seed: 1, Families: soloMix(FamilyChurn, true)}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	if len(res.Failures) != cfg.Runs {
		t.Fatalf("%d of %d churn! runs flagged; the checker missed over-budget lying", len(res.Failures), cfg.Runs)
	}
	for _, f := range res.Failures {
		if f.Family != "churn!" {
			t.Fatalf("seed %d attributed to family %q, want churn!", f.Seed, f.Family)
		}
	}
	fail := res.Failures[0]
	full := Config{Families: soloMix(FamilyChurn, true)}.withDefaults()
	sr := full.Shrink(fail.Seed, fail.Schedule, 0)
	if len(sr.Violations) == 0 {
		t.Fatalf("shrinker did not reproduce seed %d within %d runs", fail.Seed, sr.Runs)
	}
	if got := len(sr.Schedule.Corruptions); got <= full.F {
		t.Fatalf("shrunk reproducer has %d ≤ f=%d corruptions — an in-budget schedule cannot beat the protocol",
			got, full.F)
	}
}

// delayskew! — out-of-δ starvation — must be flagged on every seed, with the
// Lemma 7(iii) recovery checkpoints among the evidence: the starved victim's
// clock distance cannot halve when every round trip exceeds its timeout.
func TestDelaySkewHostileFlagged(t *testing.T) {
	cfg := Config{Runs: 6, Seed: 1, Families: soloMix(FamilyDelaySkew, true)}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	if len(res.Failures) != cfg.Runs {
		t.Fatalf("%d of %d delayskew! runs flagged; out-of-δ skew went unnoticed", len(res.Failures), cfg.Runs)
	}
	recovery := 0
	for _, f := range res.Failures {
		if f.Family != "delayskew!" {
			t.Fatalf("seed %d attributed to family %q, want delayskew!", f.Seed, f.Family)
		}
		for _, v := range f.Violations {
			if v.Invariant == check.InvariantRecovery {
				recovery++
			}
		}
	}
	if recovery == 0 {
		t.Fatal("no recovery violations across the delayskew! failures")
	}
}

// The Lemma 7(iii) teeth check (mutation testing the checker through the
// FlashRecovery family): with victims' halving disabled, every flash run
// must report recovery violations. Honest flash runs are clean
// (TestHonestFamiliesClean), so any silence here means the recovery
// invariant lost its teeth.
func TestFlashRecoveryMutationCaught(t *testing.T) {
	cfg := Config{
		Runs:     6,
		Seed:     1,
		Families: soloMix(FamilyFlash, false),
		Mutate:   DisableVictimRecovery,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	if len(res.Failures) != cfg.Runs {
		t.Fatalf("%d of %d mutated flash runs flagged; recovery checking has no teeth", len(res.Failures), cfg.Runs)
	}
	for _, f := range res.Failures {
		sawRecovery := false
		for _, v := range f.Violations {
			if v.Invariant == check.InvariantRecovery {
				sawRecovery = true
				break
			}
		}
		if !sawRecovery {
			t.Errorf("seed %d: mutated flash run failed without a recovery violation", f.Seed)
		}
	}
}
