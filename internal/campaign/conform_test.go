package campaign

import (
	"testing"
)

// TestConformHonestCampaign: with Conform set every run's span stream is
// replayed through the spec; the honest protocol must refine it, and the
// result must prove the replay covered real rounds — a refinement pass over
// zero rounds proves nothing.
func TestConformHonestCampaign(t *testing.T) {
	runs := 16
	if testing.Short() {
		runs = 8
	}
	cfg := Config{Runs: runs, Seed: 1, Conform: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	if res.Completed != runs || res.Refined != runs {
		t.Fatalf("completed/refined = %d/%d, want %d/%d", res.Completed, res.Refined, runs, runs)
	}
	if res.RefinedRounds == 0 {
		t.Fatal("refinement replayed zero rounds")
	}
	if res.ConformViolations != 0 {
		for _, f := range res.Failures {
			for _, v := range f.Conform {
				t.Errorf("seed %d: honest run failed refinement: %s", f.Seed, v.String())
			}
		}
	}
	for _, f := range res.Failures {
		if len(f.Violations) > 0 {
			t.Errorf("seed %d: online violations on the honest protocol: %s", f.Seed, f.Violations[0])
		}
	}

	// The conform campaign must be reproducible run-to-run, like the plain one.
	again, err := Run(cfg)
	if err != nil {
		t.Fatalf("campaign error on rerun: %v", err)
	}
	if again.RefinedRounds != res.RefinedRounds || again.ConformViolations != res.ConformViolations {
		t.Fatalf("conform campaign not reproducible: rounds %d/%d, violations %d/%d",
			res.RefinedRounds, again.RefinedRounds, res.ConformViolations, again.ConformViolations)
	}
}

// TestConformCatchesMutation: the refinement bridge has teeth independent of
// the online Theorem 5 checker — the loosened trimming mutation (core runs
// with f=0 while the campaign declares f=2) produces adjustments the spec's
// trimmed arithmetic cannot reproduce, so runs fail on refinement with the
// offending round identified.
func TestConformCatchesMutation(t *testing.T) {
	res, err := Run(Config{Runs: 8, Seed: 1, Conform: true, Mutate: loosenTrimming})
	if err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	if res.ConformViolations == 0 {
		t.Fatal("mutated protocol passed refinement — the bridge is toothless")
	}
	found := false
	for _, f := range res.Failures {
		for _, v := range f.Conform {
			if v.Round != 0 && v.Action != "" {
				found = true
			}
		}
	}
	if !found {
		t.Error("refinement violations do not identify the offending transition")
	}
}
