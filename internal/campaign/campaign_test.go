package campaign

import (
	"reflect"
	"testing"

	"clocksync/internal/scenario"
)

// Every generated schedule must satisfy Definition 2 for the campaign's
// (n, f, Θ) — validity is promised by construction, so a single failing seed
// is a generator bug, not bad luck.
func TestGeneratedSchedulesValid(t *testing.T) {
	cfg := Config{}.withDefaults()
	for seed := int64(0); seed < 500; seed++ {
		s := cfg.Scenario(seed)
		if err := s.Adversary.Validate(cfg.N, cfg.F, cfg.Theta); err != nil {
			t.Fatalf("seed %d: generated schedule invalid: %v", seed, err)
		}
		if got := len(s.Adversary.Corruptions); got > cfg.MaxCorruptions {
			t.Fatalf("seed %d: %d corruptions > cap %d", seed, got, cfg.MaxCorruptions)
		}
		if b := s.Delay.Bound(); b > cfg.Delta {
			t.Fatalf("seed %d: delay bound %v exceeds δ=%v", seed, b, cfg.Delta)
		}
		for _, c := range s.Adversary.Corruptions {
			if c.From < 0 || float64(c.To) > float64(s.Duration) {
				t.Fatalf("seed %d: corruption [%v, %v] outside the run", seed, c.From, c.To)
			}
		}
	}
}

// The generator is a pure function of the seed: replaying a seed (as the
// shrinker and the -seed flag do) must reproduce the identical scenario.
func TestGeneratorDeterministic(t *testing.T) {
	cfg := Config{}.withDefaults()
	for seed := int64(0); seed < 50; seed++ {
		a, b := cfg.Scenario(seed), cfg.Scenario(seed)
		if !reflect.DeepEqual(a.Adversary, b.Adversary) {
			t.Fatalf("seed %d: schedules differ between generations", seed)
		}
		if !reflect.DeepEqual(a.Delay, b.Delay) {
			t.Fatalf("seed %d: delay models differ between generations", seed)
		}
		if a.DropProb != b.DropProb || a.InitSpread != b.InitSpread {
			t.Fatalf("seed %d: drawn scalars differ between generations", seed)
		}
	}
}

// The generator must produce scenarios scenario.Run accepts and the checker
// must stay silent on the honest protocol: Theorem 5 holds, so any violation
// here is a checker (or simulator) bug.
func TestHonestCampaignClean(t *testing.T) {
	runs := 64
	if testing.Short() {
		runs = 16
	}
	res, err := Run(Config{Runs: runs, Seed: 1})
	if err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	if res.Completed != runs {
		t.Fatalf("completed %d of %d runs", res.Completed, runs)
	}
	for _, f := range res.Failures {
		t.Errorf("seed %d: %d violations on the honest protocol; first: %s",
			f.Seed, len(f.Violations), f.Violations[0])
	}
}

// The streaming scheduler must preserve per-seed accounting even when Runs
// is not a multiple of Workers.
func TestRunBatchesUnevenly(t *testing.T) {
	res, err := Run(Config{Runs: 5, Seed: 100, Workers: 2,
		Duration: 600, MaxCorruptions: 1})
	if err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	if res.Runs != 5 || res.Completed != 5 {
		t.Fatalf("requested/completed = %d/%d, want 5/5", res.Runs, res.Completed)
	}
}

// TestCampaignFailuresInSeedOrder pins the streaming scheduler's ordering
// contract: regardless of which worker finishes which run first, Failures
// come back sorted by seed, and re-running the identical campaign reproduces
// the identical failure set.
func TestCampaignFailuresInSeedOrder(t *testing.T) {
	cfg := Config{Runs: 12, Seed: 1, Workers: 4, Mutate: loosenTrimming}
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	if len(a.Failures) < 2 {
		t.Skipf("only %d failures — not enough to check ordering", len(a.Failures))
	}
	for i := 1; i < len(a.Failures); i++ {
		if a.Failures[i-1].Seed >= a.Failures[i].Seed {
			t.Fatalf("failures out of seed order: %d before %d",
				a.Failures[i-1].Seed, a.Failures[i].Seed)
		}
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("campaign error on rerun: %v", err)
	}
	if len(a.Failures) != len(b.Failures) || a.TotalViolations != b.TotalViolations {
		t.Fatalf("campaign not reproducible: %d/%d failures, %d/%d violations",
			len(a.Failures), len(b.Failures), a.TotalViolations, b.TotalViolations)
	}
	for i := range a.Failures {
		if a.Failures[i].Seed != b.Failures[i].Seed {
			t.Fatalf("failure %d: seed %d vs %d across identical campaigns",
				i, a.Failures[i].Seed, b.Failures[i].Seed)
		}
	}
}

// A scenario built by the generator must also run standalone — the replay
// path users follow when a campaign points at a seed.
func TestScenarioReplaysStandalone(t *testing.T) {
	cfg := Config{Duration: 900}.withDefaults()
	s := cfg.Scenario(3)
	if !s.Check {
		t.Fatal("generated scenario does not attach the checker")
	}
	res, err := scenario.Run(s)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("honest replay violated an invariant: %s", v)
	}
}
