package campaign

import (
	"testing"

	"clocksync/internal/core"
	"clocksync/internal/scenario"
)

// loosenTrimming removes the convergence function's fault-tolerant trimming
// (FTA with f = 0 averages raw estimates), the classic "subtle protocol bug"
// the checker exists to catch: Byzantine estimates then drag good clocks
// arbitrarily far.
func loosenTrimming(c *core.Config, _ scenario.BuildContext) { c.F = 0 }

// The mutation smoke test proves the checker has teeth: a campaign over the
// deliberately loosened protocol must produce violations, and the shrinker
// must reduce a failing schedule to at most two corruptions that still fail.
func TestMutatedProtocolCaughtAndShrunk(t *testing.T) {
	cfg := Config{Runs: 16, Seed: 1, Mutate: loosenTrimming}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("loosened convergence function produced no violations — the checker is toothless")
	}

	f := res.Failures[0]
	sr := cfg.Shrink(f.Seed, f.Schedule, 100)
	if len(sr.Violations) == 0 {
		t.Fatalf("seed %d: shrinker lost the failure (%d runs spent)", f.Seed, sr.Runs)
	}
	if got := len(sr.Schedule.Corruptions); got > 2 {
		t.Errorf("seed %d: shrunk to %d corruptions, want ≤ 2", f.Seed, got)
	}
	if len(sr.Schedule.Corruptions) > len(f.Schedule.Corruptions) {
		t.Errorf("shrinker grew the schedule: %d → %d corruptions",
			len(f.Schedule.Corruptions), len(sr.Schedule.Corruptions))
	}
}

// Shrinking a schedule that never failed must report non-reproduction
// instead of inventing a failure.
func TestShrinkNonFailureReportsClean(t *testing.T) {
	cfg := Config{Duration: 600}
	s := cfg.withDefaults().Scenario(1)
	sr := cfg.Shrink(1, s.Adversary, 10)
	if len(sr.Violations) != 0 {
		t.Fatalf("honest run shrunk to a 'failure': %v", sr.Violations)
	}
	if sr.Runs != 1 {
		t.Fatalf("non-reproducing shrink spent %d runs, want 1", sr.Runs)
	}
}
