// Package campaign generates and runs randomized adversary campaigns: seeded
// batches of simulations, each with a randomly drawn delay model, drop rate,
// initial spread and a valid f-limited mobile corruption schedule (Definition
// 2 respected by construction), every run instrumented with the online
// Theorem 5 invariant checker of internal/check. A streaming worker pool
// fans runs across cores — each worker pulls the next seed the moment it
// finishes its current one, reusing its simulator arena between runs — and a
// shrinker minimizes any failing schedule to a smallest reproducer.
// Campaigns are how
// the repo turns "the bounds held on the experiments we thought of" into
// "the bounds held on thousands of schedules nobody picked by hand".
package campaign

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"clocksync/internal/adversary"
	"clocksync/internal/check"
	"clocksync/internal/conformance"
	"clocksync/internal/core"
	"clocksync/internal/des"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// Config parameterizes a campaign. The zero value (plus Runs) is a sensible
// LAN-like campaign: 7 processors, f = 2, 30 simulated minutes per run,
// Θ = 5 min, δ = 50 ms, up to 4 corruptions per run, no message loss.
type Config struct {
	N int // processors (default 7)
	F int // per-period fault budget (default (N−1)/3)

	Runs int   // number of simulations (default 100)
	Seed int64 // base seed; run i uses Seed+i

	Duration simtime.Duration // simulated real time per run (default 30 min)
	Theta    simtime.Duration // adversary period Θ (default 5 min)
	Delta    simtime.Duration // delay bound δ for the random delay models (default 50 ms)
	SyncInt  simtime.Duration // local time between Syncs (default 10 s)
	Rho      float64          // hardware drift bound (default 1e-4)

	// InitSpread is the maximum initial clock scatter; each run draws its
	// spread uniformly from [0, InitSpread] (default 50 ms).
	InitSpread simtime.Duration
	// DropProb is the maximum per-run message drop probability; each run
	// draws its rate uniformly from [0, DropProb]. Message loss is beyond
	// the paper's model — leave it 0 (the default) when checking Theorem 5
	// exactly.
	DropProb float64
	// MaxCorruptions caps the corruptions per generated schedule (default 4);
	// each run draws its count uniformly from [0, MaxCorruptions].
	MaxCorruptions int

	// Workers caps this campaign's concurrency (default GOMAXPROCS). The
	// actual helper goroutines come from the process-wide simulation worker
	// pool (des.AcquireWorkers), shared with scenario.Sweep and the sharded
	// simulator, so concurrent campaigns and sweeps compose to at most
	// GOMAXPROCS simulation goroutines instead of multiplying.
	Workers int

	// SamplePeers, when positive, runs every generated scenario in
	// sparse-estimation mode (scenario.Scenario.SamplePeers): each node pings
	// a seeded random SamplePeers-of-n subset per round. Must be ≥ 2F+1. The
	// sampled campaign the CI runs drives exactly this knob through the
	// online Theorem 5 checker.
	SamplePeers int

	// Mutate, when non-nil, deliberately alters every node's protocol
	// configuration (via scenario.SyncBuilder). Mutation smoke tests use it
	// to prove the checker has teeth: a loosened convergence function must
	// produce violations.
	Mutate func(*core.Config, scenario.BuildContext)

	// Families, when non-empty, draws each run's scenario from this
	// weighted mix of named adversary families (see Family) instead of the
	// generic generator. Entries with Hostile set run the family's
	// designed-to-fail variant — violations are then expected. Run rejects
	// an invalid mix up front; parse flag strings with ParseFamilyMix.
	Families FamilyMix

	// Conform additionally records every run's span/event stream and
	// replays it through the abstract spec's transition relation
	// (internal/conformance): every observed round must be an allowed
	// ComputeAdjust/SkipRound with the exact Figure 1 arithmetic for the
	// declared F. Refinement violations are reported per failing seed
	// alongside the online checker's.
	Conform bool
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 7
	}
	if c.F == 0 {
		if c.F = (c.N - 1) / 3; c.F < 1 {
			c.F = 1
		}
	}
	if c.Runs == 0 {
		c.Runs = 100
	}
	if c.Duration == 0 {
		c.Duration = 30 * simtime.Minute
	}
	if c.Theta == 0 {
		c.Theta = 5 * simtime.Minute
	}
	if c.Delta == 0 {
		c.Delta = 50 * simtime.Millisecond
	}
	if c.SyncInt == 0 {
		c.SyncInt = 10 * simtime.Second
	}
	if c.Rho == 0 {
		c.Rho = 1e-4
	}
	if c.InitSpread == 0 {
		c.InitSpread = 50 * simtime.Millisecond
	}
	if c.MaxCorruptions == 0 {
		c.MaxCorruptions = 4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Failure is one run whose checker recorded at least one violation —
// online Theorem 5 violations, refinement violations, or both.
type Failure struct {
	Seed     int64
	Schedule adversary.Schedule
	// Family names the generating adversary family ("generic" when the
	// campaign ran without a mix) — together with Seed it makes the failure
	// reproducible from the log line alone: -runs 1 -seed <Seed> -family <Family>.
	Family     string
	Violations []check.Violation
	// Conform lists the run's refinement violations (Config.Conform).
	Conform []conformance.Violation
}

// Result summarizes a campaign.
type Result struct {
	Runs      int // runs requested
	Completed int // runs that executed (build errors excluded)
	// Failures lists every failing run in seed order; empty means every
	// completed run satisfied all checked invariants.
	Failures        []Failure
	TotalViolations int
	// Refined counts runs replayed through the spec (Config.Conform);
	// RefinedRounds the rounds those replays covered; ConformViolations
	// the refinement violations across all runs.
	Refined           int
	RefinedRounds     int
	ConformViolations int
	// PerFamily breaks the campaign down by generating family, in mix
	// order; nil when the campaign ran without Families.
	PerFamily []FamilyResult
}

// FamilyResult is one family's share of a campaign.
type FamilyResult struct {
	Family     string // canonical name ("churn", "delayskew!", …)
	Runs       int    // runs drawn from this family
	Failures   int    // failing runs
	Violations int    // online + refinement violations
}

// runOutcome is what one campaign run leaves behind: only the failure data
// and the run error, never the full scenario result — workers reuse their
// simulator between runs, so retaining Result.Sim would alias live state.
type runOutcome struct {
	completed  bool
	schedule   adversary.Schedule
	violations []check.Violation
	conform    []conformance.Violation
	rounds     int
	err        error
}

// Run executes the campaign: seeds Seed..Seed+Runs−1 are generated and run
// by a streaming pool of Workers goroutines. There is no batch barrier —
// each worker pulls the next unclaimed seed the moment its current run
// finishes, so one straggling run never idles the other workers — and each
// worker reuses a single simulator arena across all its runs
// (scenario.Scenario.ReuseSim), keeping steady-state campaign throughput
// allocation-light. Failures and errors are reported in seed order
// regardless of completion order. The returned error joins per-seed
// scenario build/run errors (generator or configuration bugs — invariant
// violations are not errors, they are Failures).
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Families.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Runs: cfg.Runs}
	outcomes := make([]runOutcome, cfg.Runs)

	var next atomic.Int64
	work := func() {
		sim := des.New(0) // reset to each run's seed by scenario.Run
		var col *conformance.Collector
		if cfg.Conform {
			col = &conformance.Collector{}
		}
		for {
			i := int(next.Add(1)) - 1
			if i >= cfg.Runs {
				return
			}
			seed := cfg.Seed + int64(i)
			s := cfg.Scenario(seed)
			s.ReuseSim = sim
			if col != nil {
				col.Reset()
				s.EventSink = col
				s.SpanSink = col
			}
			r, err := scenario.Run(s)
			if err != nil {
				outcomes[i].err = fmt.Errorf("seed %d: %w", seed, err)
				continue
			}
			outcomes[i].completed = true
			if len(r.Violations) > 0 {
				outcomes[i].schedule = r.Scenario.Adversary
				outcomes[i].violations = r.Violations
			}
			if col != nil {
				rep, err := conformance.Check(col.Events(), conformance.Config{
					F:      cfg.F,
					WayOff: float64(r.Scenario.WayOff),
				})
				if err != nil {
					outcomes[i].err = fmt.Errorf("seed %d: conformance: %w", seed, err)
					continue
				}
				outcomes[i].rounds = rep.Stats.Rounds
				if len(rep.Violations) > 0 {
					outcomes[i].schedule = r.Scenario.Adversary
					outcomes[i].conform = rep.Violations
				}
			}
		}
	}
	maxHelpers := cfg.Workers - 1
	if maxHelpers > cfg.Runs-1 {
		maxHelpers = cfg.Runs - 1
	}
	helpers := des.AcquireWorkers(maxHelpers)
	var wg sync.WaitGroup
	for w := 0; w < helpers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work() // the caller is the implicit first worker
	wg.Wait()
	des.ReleaseWorkers(helpers)

	// perFamily indexes res.PerFamily rows by canonical family name,
	// pre-seeded in mix order so the breakdown is stable.
	var perFamily map[string]*FamilyResult
	if len(cfg.Families) > 0 {
		perFamily = make(map[string]*FamilyResult, len(cfg.Families))
		res.PerFamily = make([]FamilyResult, len(cfg.Families))
		for i, w := range cfg.Families {
			res.PerFamily[i].Family = w.String()
			perFamily[w.String()] = &res.PerFamily[i]
		}
	}
	var errs []error
	for i, o := range outcomes {
		if o.err != nil {
			errs = append(errs, o.err)
			continue
		}
		if !o.completed {
			continue
		}
		res.Completed++
		seed := cfg.Seed + int64(i)
		family := cfg.pickFamily(seed).String()
		fr := perFamily[family] // nil only when Families is empty
		if fr != nil {
			fr.Runs++
		}
		if cfg.Conform {
			res.Refined++
			res.RefinedRounds += o.rounds
		}
		if len(o.violations) > 0 || len(o.conform) > 0 {
			res.TotalViolations += len(o.violations)
			res.ConformViolations += len(o.conform)
			if fr != nil {
				fr.Failures++
				fr.Violations += len(o.violations) + len(o.conform)
			}
			res.Failures = append(res.Failures, Failure{
				Seed:       seed,
				Schedule:   o.schedule,
				Family:     family,
				Violations: o.violations,
				Conform:    o.conform,
			})
		}
	}
	return res, errors.Join(errs...)
}
