package campaign

import (
	"reflect"
	"testing"
)

// FuzzFamilyConfig fuzzes the -family flag surface end to end: for any spec
// string, ParseFamilyMix must either error or return a validated, non-empty
// mix that round-trips through its canonical rendering and expands seeds
// into scenarios without panicking — never a zero-value family. Honest
// families must additionally hand back Definition 2-valid schedules; only a
// mix that explicitly sets UnsafeAdversary (churn!) may carry an invalid one.
func FuzzFamilyConfig(f *testing.F) {
	for _, spec := range []string{
		"delayskew",
		"generic",
		"delayskew:2,churn,flash,coldstart",
		"churn!",
		"delayskew!:3",
		"churn , flash",
		"churn,churn!",
		"bogus",
		"flash!",
		"churn:0",
		"churn:-2",
		"churn:",
		"churn,,flash",
		",",
		"delayskew:2:3",
		"CHURN",
		"churn:999999999999999999999",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		mix, err := ParseFamilyMix(spec)
		if err != nil {
			if mix != nil {
				t.Fatalf("ParseFamilyMix(%q) returned both a mix and %v", spec, err)
			}
			return
		}
		if len(mix) == 0 {
			t.Fatalf("ParseFamilyMix(%q) accepted an empty mix", spec)
		}
		if err := mix.Validate(); err != nil {
			t.Fatalf("ParseFamilyMix(%q) returned an invalid mix: %v", spec, err)
		}
		again, err := ParseFamilyMix(mix.String())
		if err != nil {
			t.Fatalf("canonical rendering %q of %q does not parse: %v", mix.String(), spec, err)
		}
		if !reflect.DeepEqual(mix, again) {
			t.Fatalf("mix %q does not round-trip: %+v vs %+v", spec, mix, again)
		}
		cfg := Config{Families: mix}.withDefaults()
		for _, seed := range []int64{0, 7} {
			s := cfg.Scenario(seed) // must not panic for any accepted mix
			if s.UnsafeAdversary {
				continue // churn!: invalid by design, forced past Validate
			}
			if err := s.Adversary.Validate(cfg.N, cfg.F, cfg.Theta); err != nil {
				t.Fatalf("spec %q seed %d: generated schedule invalid: %v", spec, seed, err)
			}
		}
	})
}
