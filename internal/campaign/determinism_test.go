package campaign

import (
	"bytes"
	"testing"

	"clocksync/internal/des"
	"clocksync/internal/obs"
	"clocksync/internal/scenario"
)

// captureStream runs one generated scenario with the full event+span stream
// captured as JSONL bytes. reuse, when non-nil, plays the campaign worker's
// role: the run recycles that simulator arena instead of building a fresh
// one.
func captureStream(t *testing.T, cfg Config, seed int64, reuse *des.Sim) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	s := cfg.Scenario(seed)
	s.EventSink = sink
	s.SpanSink = sink
	s.ReuseSim = reuse
	if _, err := scenario.Run(s); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatalf("seed %d: run emitted nothing", seed)
	}
	return buf.Bytes()
}

// diffAt reports the first byte index where a and b differ.
func diffAt(a, b []byte) int {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return i
}

// TestCrossRunnerDeterminism pins the property every campaign verdict rests
// on: the same (seed, spec) must produce a byte-identical event+span stream
// no matter which runner executes it — a fresh standalone simulator, a
// dirty recycled arena (Scenario.ReuseSim, the campaign worker's steady
// state), or the streaming scheduler's sequential worker loop. A divergence
// here would mean campaign failures cannot be replayed by seed.
func TestCrossRunnerDeterminism(t *testing.T) {
	cfg := Config{Duration: 600}.withDefaults()
	seeds := []int64{0, 1, 2, 3}

	// Reference: each seed standalone on a fresh simulator.
	fresh := make(map[int64][]byte, len(seeds))
	for _, seed := range seeds {
		fresh[seed] = captureStream(t, cfg, seed, nil)
	}

	// A recycled arena left dirty by a different seed's run must not leak
	// state into the next run.
	sim := des.New(0)
	captureStream(t, cfg, seeds[1], sim) // dirty the arena
	if got := captureStream(t, cfg, seeds[0], sim); !bytes.Equal(got, fresh[seeds[0]]) {
		t.Errorf("dirty ReuseSim diverges from fresh run at byte %d of %d/%d",
			diffAt(got, fresh[seeds[0]]), len(got), len(fresh[seeds[0]]))
	}

	// The campaign worker's exact loop shape: one arena, seeds in sequence.
	worker := des.New(0)
	for _, seed := range seeds {
		if got := captureStream(t, cfg, seed, worker); !bytes.Equal(got, fresh[seed]) {
			t.Errorf("worker-loop stream for seed %d diverges at byte %d of %d/%d",
				seed, diffAt(got, fresh[seed]), len(got), len(fresh[seed]))
		}
	}
}

// TestCampaignSchedulerDeterminism runs the real streaming pool twice at
// different worker counts over the same seed range with refinement enabled:
// every aggregate the scheduler reports must be identical — work-stealing
// order must never change what was computed, only when.
func TestCampaignSchedulerDeterminism(t *testing.T) {
	base := Config{Runs: 6, Seed: 1, Duration: 600, Conform: true}
	single := base
	single.Workers = 1
	wide := base
	wide.Workers = 4

	a, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(wide)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.TotalViolations != b.TotalViolations ||
		a.ConformViolations != b.ConformViolations || a.RefinedRounds != b.RefinedRounds ||
		len(a.Failures) != len(b.Failures) {
		t.Fatalf("scheduler width changed the verdict:\n1 worker: %+v\n4 workers: %+v", a, b)
	}
}
