package campaign

import (
	"math"
	"math/rand"

	"clocksync/internal/adversary"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// Scenario deterministically expands one seed into a fully-specified run:
// delay model, drop rate, initial spread and corruption schedule are all
// drawn from a generator keyed on the seed alone, so a failing seed can be
// replayed (and its schedule shrunk) bit-for-bit.
//
// The draw order is fixed — delay, drop, spread, then schedule — so the
// shrinker can override only the schedule of a replayed scenario while
// keeping every other draw identical.
//
// When Families is set, the seed's family is picked first (from a separate
// seed-keyed stream; see pickFamily) and a non-generic pick dispatches to
// that family's generator; the generic path below is byte-for-byte the
// pre-family generator.
func (c Config) Scenario(seed int64) scenario.Scenario {
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(seed*0x9E3779B9 + 0x7F4A7C15))
	if fw := c.pickFamily(seed); fw.Family != FamilyGeneric {
		return c.familyScenario(fw, seed, rng)
	}
	s := scenario.Scenario{
		Name:     "campaign",
		Seed:     seed,
		N:        c.N,
		F:        c.F,
		Duration: c.Duration,
		Theta:    c.Theta,
		Rho:      c.Rho,
		SyncInt:  c.SyncInt,
		Delay:    c.randomDelay(rng),
		// Pin the estimation timeout to the campaign-level 2δ rather than the
		// drawn model's own bound: a ConstantDelay model has Bound() equal to
		// its every sample, so MaxWait = 2·Bound() would make each round trip
		// tie its own timeout exactly — and the simulator breaks same-instant
		// ties toward the earlier-scheduled timeout, starving every
		// estimation round.
		MaxWait:     2 * c.Delta,
		DropProb:    c.DropProb * rng.Float64(),
		InitSpread:  simtime.Duration(rng.Float64() * float64(c.InitSpread)),
		SamplePeers: c.SamplePeers,
		Check:       true,
	}
	s.Adversary = c.schedule(rng)
	if c.Mutate != nil {
		s.Builder = scenario.SyncBuilder(c.Mutate)
	}
	return s
}

// randomDelay draws one of three delay shapes, each with Bound() ≤ δ so the
// derived ε (and with it every checked bound) stays honest.
func (c Config) randomDelay(rng *rand.Rand) network.DelayModel {
	d := float64(c.Delta)
	switch rng.Intn(3) {
	case 0: // uniform [lo, δ]
		lo := simtime.Duration(d * (0.05 + 0.45*rng.Float64()))
		return network.NewUniformDelay(lo, c.Delta)
	case 1: // constant, strictly below δ
		return network.ConstantDelay{D: simtime.Duration(d * (0.2 + 0.7*rng.Float64()))}
	default: // mostly-fast with rare spikes; spikes add to base, so Bound = δ/2 + δ/2 = δ
		return network.SpikyDelay{
			Base:      network.NewUniformDelay(simtime.Duration(d/20), simtime.Duration(d/2)),
			SpikeProb: 0.02 + 0.08*rng.Float64(),
			SpikeMax:  simtime.Duration(d / 2),
		}
	}
}

// schedule draws an f-limited mobile corruption schedule that is valid by
// construction: corruption k starts more than (Θ+maxDwell)/f after
// corruption k−1, so at most f extended intervals [From−Θ, To] — and hence
// at most f distinct controlled processors — overlap any Θ-window
// (Definition 2). A final Validate pass is kept as a belt-and-suspenders
// guard: on the (never observed) chance the construction slips, trailing
// corruptions are dropped until the schedule passes.
func (c Config) schedule(rng *rand.Rand) adversary.Schedule {
	var s adversary.Schedule
	want := rng.Intn(c.MaxCorruptions + 1)
	if want == 0 {
		return s
	}

	minDwell := c.SyncInt
	maxDwell := simtime.Duration(float64(c.Theta) / float64(2*c.F))
	if maxDwell < 2*c.SyncInt {
		maxDwell = 2 * c.SyncInt
	}
	// Leave Θ of quiet tail so the last release's recovery (≤ KT ≤ Θ) is
	// observable before the run ends.
	start := simtime.Time(2 * c.Theta)
	latest := simtime.Time(c.Duration - c.Theta - maxDwell)
	minStep := simtime.Duration(float64(c.Theta+maxDwell)/float64(c.F)) + simtime.Millisecond

	at := start.Add(simtime.Duration(rng.Float64() * float64(minStep)))
	for i := 0; i < want && at <= latest; i++ {
		dwell := minDwell + simtime.Duration(rng.Float64()*float64(maxDwell-minDwell))
		s.Corruptions = append(s.Corruptions, adversary.Corruption{
			Node:     rng.Intn(c.N),
			From:     at,
			To:       at.Add(dwell),
			Behavior: c.randomBehavior(rng),
		})
		at = at.Add(simtime.Duration(float64(minStep) * (1 + 0.5*rng.Float64())))
	}
	for len(s.Corruptions) > 0 {
		if err := s.Validate(c.N, c.F, c.Theta); err == nil {
			break
		}
		s.Corruptions = s.Corruptions[:len(s.Corruptions)-1]
	}
	return s
}

// randomBehavior draws from the full fault palette, with log-uniform
// magnitudes: small offsets probe the ε-scale envelope, huge ones exercise
// the WayOff recovery path.
func (c Config) randomBehavior(rng *rand.Rand) protocol.Behavior {
	sign := simtime.Duration(1)
	if rng.Intn(2) == 0 {
		sign = -1
	}
	switch rng.Intn(6) {
	case 0:
		return adversary.Crash{}
	case 1:
		return adversary.ClockSmash{
			Offset: sign * logUniform(rng, 10*simtime.Millisecond, 60*simtime.Second),
			Quiet:  rng.Intn(2) == 0,
		}
	case 2:
		return adversary.RandomLiar{Amplitude: logUniform(rng, 10*simtime.Millisecond, 10*simtime.Second)}
	case 3:
		return adversary.ConsistentLiar{Offset: sign * logUniform(rng, 10*simtime.Millisecond, 10*simtime.Second)}
	case 4:
		return adversary.SplitBrain{
			Boundary: 1 + rng.Intn(c.N-1),
			Offset:   sign * logUniform(rng, 10*simtime.Millisecond, 10*simtime.Second),
		}
	default:
		return &adversary.EdgePusher{
			Push: sign * logUniform(rng, 10*simtime.Millisecond, simtime.Second),
			Rate: rng.Float64() * 1e-3,
		}
	}
}

// logUniform draws from [lo, hi] uniformly in log space.
func logUniform(rng *rand.Rand, lo, hi simtime.Duration) simtime.Duration {
	l, h := math.Log(float64(lo)), math.Log(float64(hi))
	return simtime.Duration(math.Exp(l + rng.Float64()*(h-l)))
}
