package campaign

import (
	"math"

	"clocksync/internal/adversary"
	"clocksync/internal/check"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// ShrinkResult is a minimized failing schedule.
type ShrinkResult struct {
	// Schedule is the smallest still-failing schedule found.
	Schedule adversary.Schedule
	// Violations is what the checker reported on the final schedule (empty
	// when the original schedule did not reproduce within the run budget).
	Violations []check.Violation
	// Runs is how many simulations the shrinker spent.
	Runs int
}

// Shrink minimizes a failing run's corruption schedule to a smallest
// reproducer: it replays the exact scenario of the seed (same delay model,
// drop rate and initial spread — the generator draws those before the
// schedule) with candidate schedules that are always subsets/subintervals of
// the original, so f-limitedness is preserved. Three reductions run to a
// fixpoint: drop whole corruptions, halve corruption dwells (floored at one
// SyncInt), and round From/To inward to whole seconds. maxRuns caps the
// simulation budget (≤ 0 means 200).
func (c Config) Shrink(seed int64, sched adversary.Schedule, maxRuns int) ShrinkResult {
	c = c.withDefaults()
	if maxRuns <= 0 {
		maxRuns = 200
	}
	runs := 0
	// failing replays the seed's scenario under a candidate schedule and
	// returns its violations (nil once the budget is spent or on error).
	failing := func(s adversary.Schedule) []check.Violation {
		if runs >= maxRuns {
			return nil
		}
		runs++
		sc := c.Scenario(seed)
		sc.Adversary = s
		res, err := scenario.Run(sc)
		if err != nil {
			return nil
		}
		return res.Violations
	}

	best := cloneSchedule(sched)
	bestViol := failing(best)
	if len(bestViol) == 0 {
		return ShrinkResult{Schedule: best, Runs: runs}
	}

	for improved := true; improved && runs < maxRuns; {
		improved = false

		// Drop corruptions one at a time; on success restart at the same
		// index (the slice shifted down).
		for i := 0; i < len(best.Corruptions) && runs < maxRuns; {
			cand := cloneSchedule(best)
			cand.Corruptions = append(cand.Corruptions[:i], cand.Corruptions[i+1:]...)
			if v := failing(cand); len(v) > 0 {
				best, bestViol = cand, v
				improved = true
			} else {
				i++
			}
		}

		// Halve dwells, floored at one SyncInt (shorter and the node never
		// even attempts a Sync while corrupted).
		for i := range best.Corruptions {
			if runs >= maxRuns {
				break
			}
			cor := best.Corruptions[i]
			dwell := cor.To.Sub(cor.From)
			if dwell <= c.SyncInt {
				continue
			}
			half := simtime.MaxDuration(dwell/2, c.SyncInt)
			cand := cloneSchedule(best)
			cand.Corruptions[i].To = cor.From.Add(half)
			if v := failing(cand); len(v) > 0 {
				best, bestViol = cand, v
				improved = true
			}
		}

		// Round interval endpoints inward to whole seconds for a readable
		// reproducer.
		for i := range best.Corruptions {
			if runs >= maxRuns {
				break
			}
			cor := best.Corruptions[i]
			from := simtime.Time(math.Ceil(float64(cor.From)))
			to := simtime.Time(math.Floor(float64(cor.To)))
			if to <= from || (from == cor.From && to == cor.To) {
				continue
			}
			cand := cloneSchedule(best)
			cand.Corruptions[i].From, cand.Corruptions[i].To = from, to
			if v := failing(cand); len(v) > 0 {
				best, bestViol = cand, v
				improved = true
			}
		}
	}
	return ShrinkResult{Schedule: best, Violations: bestViol, Runs: runs}
}

// cloneSchedule copies the corruption slice so candidate edits never alias
// the schedule they were derived from. Behavior values are shared — the
// shrinker runs simulations one at a time, so stateful behaviors cannot
// race.
func cloneSchedule(s adversary.Schedule) adversary.Schedule {
	out := adversary.Schedule{Corruptions: make([]adversary.Corruption, len(s.Corruptions))}
	copy(out.Corruptions, s.Corruptions)
	return out
}
