package mc

import "fmt"

// ActionKind enumerates the spec's action vocabulary — deliberately the
// same names the ClockSync TLA+ modules and docs/CONFORMANCE.md use, and
// the vocabulary internal/conformance maps recorded traces onto.
type ActionKind uint8

const (
	ActSend    ActionKind = iota // SendEstimate: open a round, query all peers
	ActReceive                   // ReceiveReply: one peer estimate arrives
	ActTimeout                   // Timeout: one peer estimate is given up on
	ActCompute                   // ComputeAdjust: fault-tolerant midpoint over resolved estimates
	ActSkip                      // SkipRound: too few live estimates, no adjustment
	ActApply                     // ApplyAdjust: the computed adjustment lands on the clock
	ActCrash                     // Crash: adversary corrupts a node, scrambling its clock
	ActRecover                   // Recover: corruption released, honest logic resumes
)

// Action is one transition label. Node is the acting node; Peer and Val
// carry the kind-specific payload (estimate source and value, lie value,
// scramble value, adjustment).
type Action struct {
	Kind ActionKind
	Node int8
	Peer int8
	Val  int16
}

func (a Action) String() string {
	switch a.Kind {
	case ActSend:
		return fmt.Sprintf("SendEstimate(p%d)", a.Node)
	case ActReceive:
		return fmt.Sprintf("ReceiveReply(p%d<-p%d, est=%+d)", a.Node, a.Peer, a.Val)
	case ActTimeout:
		return fmt.Sprintf("Timeout(p%d<-p%d, lost)", a.Node, a.Peer)
	case ActCompute:
		return fmt.Sprintf("ComputeAdjust(p%d, delta=%+d)", a.Node, a.Val)
	case ActSkip:
		return fmt.Sprintf("SkipRound(p%d)", a.Node)
	case ActApply:
		return fmt.Sprintf("ApplyAdjust(p%d, delta=%+d)", a.Node, a.Val)
	case ActCrash:
		return fmt.Sprintf("Crash(p%d, clock:=%+d)", a.Node, a.Val)
	case ActRecover:
		return fmt.Sprintf("Recover(p%d)", a.Node)
	}
	return fmt.Sprintf("Action(kind=%d)", a.Kind)
}

// succ is one enumerated transition: the action label, the successor
// state, and a non-empty invariant name if the transition itself is a
// violation (transition-scoped invariants: quorum, bounded adjustment,
// way-off jump by an in-sync node).
type succ struct {
	act    Action
	state  State
	viol   string
	detail string
}

// successors enumerates every enabled transition of s in a deterministic
// order (node-major, then kind, then value), canonicalizing each
// successor. The explorer layers the state-scoped invariants on top.
//
// Partial-order reduction: when some node's round is fully resolved, its
// ComputeAdjust/SkipRound is the only transition enumerated. The compute
// reads and clears only that node's private round data and commutes with
// every other enabled action (Wait and Ready both count as open rounds,
// and leaving Wait only shrinks the set of blocked appliers), so
// prioritizing it preserves all reachable post-compute states.
func successors(s State, p Params, r Rules, canon func(State) State, emit func(succ)) {
	n := p.N
	push := func(a Action, ns State, viol, detail string) {
		emit(succ{act: a, state: canon(ns), viol: viol, detail: detail})
	}

	for i := 0; i < n; i++ {
		if s.good(i) && s.Phase[i] == phaseWait && s.Got[i] == peersMask(n, i) {
			computeAdjust(s, p, r, i, push)
			return
		}
	}

	for i := 0; i < n; i++ {
		fi := !s.good(i)

		// Crash(i): corrupt a good node, scramble its clock. Budget-gated.
		if !fi && s.Budget > 0 {
			for _, v := range p.Scrambles {
				ns := s
				ns.Faulty |= bit(i)
				ns.Insync &^= bit(i)
				ns.Clock[i] = clampI8(v)
				ns.Phase[i] = phaseIdle
				ns.Pend[i] = 0
				ns.Got[i], ns.Fail[i], ns.Moved[i] = 0, 0, 0
				ns.Est[i] = [maxN]int8{}
				ns.Jump &^= bit(i)
				ns.Anchor &^= bit(i)
				ns.Budget--
				push(Action{Kind: ActCrash, Node: int8(i), Val: int16(v)}, ns, "", "")
			}
		}

		// Recover(i): corruption released; clock stays scrambled, the
		// node is honest again but not yet in sync (the ghost bit is
		// re-earned by an anchored round landing inside the envelope).
		if fi {
			ns := s
			ns.Faulty &^= bit(i)
			ns.Phase[i] = phaseIdle
			ns.Pend[i] = 0
			ns.Got[i], ns.Fail[i], ns.Moved[i] = 0, 0, 0
			ns.Est[i] = [maxN]int8{}
			push(Action{Kind: ActRecover, Node: int8(i)}, ns, "", "")
			continue // corrupted nodes run no protocol logic of their own
		}

		switch s.Phase[i] {
		case phaseIdle:
			// SendEstimate(i): open a round if the interleaving budget allows.
			if s.openRounds(n) < p.MaxOpen {
				ns := s
				ns.Phase[i] = phaseWait
				ns.Got[i], ns.Fail[i], ns.Moved[i] = 0, 0, 0
				ns.Est[i] = [maxN]int8{}
				push(Action{Kind: ActSend, Node: int8(i)}, ns, "", "")
			}

		case phaseWait:
			for j := 0; j < n; j++ {
				if j == i || s.Got[i]&bit(j) != 0 {
					continue
				}
				if s.good(j) {
					// ReceiveReply(i, j): honest estimate sampled at
					// delivery time, with error from Errs.
					for _, e := range p.Errs {
						d := int(s.Clock[j]) - int(s.Clock[i]) + e
						ns := s
						ns.Got[i] |= bit(j)
						ns.Est[i][j] = clampI8(d)
						push(Action{Kind: ActReceive, Node: int8(i), Peer: int8(j), Val: int16(clampI8(d))}, ns, "", "")
					}
				} else {
					// ReceiveReply(i, j) from a corrupted peer: any lie.
					for _, v := range p.Lies {
						ns := s
						ns.Got[i] |= bit(j)
						ns.Est[i][j] = clampI8(v)
						push(Action{Kind: ActReceive, Node: int8(i), Peer: int8(j), Val: int16(clampI8(v))}, ns, "", "")
					}
				}
				// Timeout(i, j): the reply is lost (message loss or a
				// silent crashed peer — unconditional over-approximation).
				ns := s
				ns.Got[i] |= bit(j)
				ns.Fail[i] |= bit(j)
				push(Action{Kind: ActTimeout, Node: int8(i), Peer: int8(j)}, ns, "", "")
			}

		case phaseReady:
			// ApplyAdjust(i): enabled unless some open round already saw
			// i move (SyncInt ≥ 2·MaxWait abstraction).
			blocked := false
			for w := 0; w < n; w++ {
				if w != i && s.Phase[w] == phaseWait && s.Moved[w]&bit(i) != 0 {
					blocked = true
					break
				}
			}
			if !blocked {
				applyAdjust(s, p, i, push)
			}
		}
	}
}

// computeAdjust runs the integer Figure 1 mirror for node i and emits the
// ComputeAdjust or SkipRound transition, with the quorum invariant checked
// at the moment an adjustment is produced.
func computeAdjust(s State, p Params, r Rules, i int, push func(Action, State, string, string)) {
	n := p.N
	var overs, unders [maxN]int
	live := 1 // self reading is always live
	overs[0], unders[0] = 0, 0
	k := 1
	liveInsync := 1
	if !s.insync(i) {
		liveInsync = 0
	}
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		if s.Fail[i]&bit(j) != 0 {
			if r.ZeroFill {
				overs[k], unders[k] = p.Bound, -p.Bound
			} else {
				overs[k], unders[k] = inf, -inf
			}
		} else {
			d := int(s.Est[i][j])
			overs[k], unders[k] = d+p.Bound, d-p.Bound
			live++
			if s.good(j) && s.insync(j) {
				liveInsync++
			}
		}
		k++
	}

	delta, jumped, ok, m, M := converge(p.F, p.WayOff, overs[:n], unders[:n], r)

	// The round's samples are dead once the verdict is in; clearing them
	// merges all states that differ only in consumed round data.
	clearRound := func(ns *State) {
		ns.Got[i], ns.Fail[i], ns.Moved[i] = 0, 0, 0
		ns.Est[i] = [maxN]int8{}
	}

	if !ok {
		ns := s
		ns.Phase[i] = phaseIdle
		ns.Pend[i] = 0
		clearRound(&ns)
		push(Action{Kind: ActSkip, Node: int8(i)}, ns, "", "")
		return
	}

	ns := s
	ns.Phase[i] = phaseReady
	clearRound(&ns)
	ns.Pend[i] = clampI8(delta)
	ns.Jump &^= bit(i)
	if jumped {
		ns.Jump |= bit(i)
	}
	// Anchored: at most F of the n readings came from sources outside the
	// in-sync good set (corrupted, recovering, or timed out) — then the
	// trimmed extremes are pinned inside the in-sync hull ± Bound.
	ns.Anchor &^= bit(i)
	if liveInsync >= n-p.F {
		ns.Anchor |= bit(i)
	}

	viol, detail := "", ""
	if live < p.F+1 || n < 2*p.F+1 {
		viol = InvQuorum
		detail = fmt.Sprintf("adjustment computed from %d live estimates (need >= f+1=%d of n=%d >= 2f+1)", live, p.F+1, n)
	}
	push(Action{Kind: ActCompute, Node: int8(i), Val: int16(delta)}, ns, viol, detail)
	_ = m
	_ = M
}

// applyAdjust lands i's pending adjustment, updates the ghost in-sync bit,
// marks i moved in every open round, and checks the transition-scoped
// bounded-adjustment and no-jump invariants for in-sync nodes.
func applyAdjust(s State, p Params, i int, push func(Action, State, string, string)) {
	n := p.N
	delta := int(s.Pend[i])
	wasInsync := s.insync(i)
	jumped := s.Jump&bit(i) != 0
	anchored := s.Anchor&bit(i) != 0

	ns := s
	ns.Clock[i] = clampI8(int(s.Clock[i]) + delta)
	ns.Phase[i] = phaseIdle
	ns.Pend[i] = 0
	ns.Jump &^= bit(i)
	ns.Anchor &^= bit(i)
	for w := 0; w < n; w++ {
		if w != i && ns.Phase[w] == phaseWait {
			ns.Moved[w] |= bit(i)
		}
	}

	// Ghost rejoin rule: an anchored round that lands the node inside the
	// envelope of every in-sync good node restores the agreement
	// obligation (the model analogue of the recovered-node rejoin).
	if !wasInsync && anchored {
		within := true
		for j := 0; j < n; j++ {
			if j == i || !ns.good(j) || !ns.insync(j) {
				continue
			}
			if d := int(ns.Clock[i]) - int(ns.Clock[j]); d > p.Envelope || d < -p.Envelope {
				within = false
				break
			}
		}
		if within {
			ns.Insync |= bit(i)
		}
	}

	viol, detail := "", ""
	switch {
	case wasInsync && jumped:
		viol = InvNoJump
		detail = fmt.Sprintf("an in-sync node took the WayOff branch (delta=%+d)", delta)
	case wasInsync && (delta > p.MaxStep || delta < -p.MaxStep):
		viol = InvStep
		detail = fmt.Sprintf("an in-sync node adjusted by %+d, exceeding the Δ/2+ε bound %d", delta, p.MaxStep)
	}
	push(Action{Kind: ActApply, Node: int8(i), Val: int16(delta)}, ns, viol, detail)
}

// applyAction re-runs the transition relation from s with no
// canonicalization and returns the raw successor labeled by a. Used only
// for counterexample reconstruction.
func applyAction(s State, a Action, p Params, r Rules) (State, bool) {
	var out State
	found := false
	identity := func(ns State) State { return ns }
	successors(s, p, r, identity, func(sc succ) {
		if !found && sc.act == a {
			out = sc.state
			found = true
		}
	})
	return out, found
}

// relabelAction rewrites an action's node indices through sigma.
func relabelAction(a Action, sigma []int) Action {
	if int(a.Node) < len(sigma) {
		a.Node = int8(sigma[a.Node])
	}
	if a.Kind == ActReceive || a.Kind == ActTimeout {
		if int(a.Peer) < len(sigma) {
			a.Peer = int8(sigma[a.Peer])
		}
	}
	return a
}
