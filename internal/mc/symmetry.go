package mc

// Node-permutation symmetry reduction. The abstract cluster is fully
// symmetric — no dynamics depend on node identity — so states that differ
// only by a relabeling of nodes are bisimilar. The canonical
// representative is the lexicographically minimal state (by stateLess)
// over all n! relabelings, computed after the clock-shift quotient. For
// n ≤ 5 that is at most 120 candidate encodings per state, and it divides
// the reachable set by nearly n!.

// permutations returns all permutations of [0..n) in a deterministic
// order.
func permutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			cp := make([]int, n)
			copy(cp, base)
			out = append(out, cp)
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}

// permuteBits relabels a node bitmask: bit i of mask becomes bit perm[i].
func permuteBits(mask uint8, n int, perm []int) uint8 {
	var out uint8
	for i := 0; i < n; i++ {
		if mask&bit(i) != 0 {
			out |= bit(perm[i])
		}
	}
	return out
}

// permute relabels node i to perm[i] across every field.
func permute(s *State, n int, perm []int) State {
	var ns State
	for i := 0; i < n; i++ {
		pi := perm[i]
		ns.Clock[pi] = s.Clock[i]
		ns.Phase[pi] = s.Phase[i]
		ns.Pend[pi] = s.Pend[i]
		ns.Got[pi] = permuteBits(s.Got[i], n, perm)
		ns.Fail[pi] = permuteBits(s.Fail[i], n, perm)
		ns.Moved[pi] = permuteBits(s.Moved[i], n, perm)
		for j := 0; j < n; j++ {
			ns.Est[pi][perm[j]] = s.Est[i][j]
		}
	}
	ns.Jump = permuteBits(s.Jump, n, perm)
	ns.Anchor = permuteBits(s.Anchor, n, perm)
	ns.Faulty = permuteBits(s.Faulty, n, perm)
	ns.Insync = permuteBits(s.Insync, n, perm)
	ns.Budget = s.Budget
	return ns
}

// stateLess is a total order over States (field-major, then node-major).
func stateLess(a, b *State) bool {
	for i := 0; i < maxN; i++ {
		if a.Clock[i] != b.Clock[i] {
			return a.Clock[i] < b.Clock[i]
		}
	}
	for i := 0; i < maxN; i++ {
		if a.Phase[i] != b.Phase[i] {
			return a.Phase[i] < b.Phase[i]
		}
	}
	for i := 0; i < maxN; i++ {
		for j := 0; j < maxN; j++ {
			if a.Est[i][j] != b.Est[i][j] {
				return a.Est[i][j] < b.Est[i][j]
			}
		}
	}
	for i := 0; i < maxN; i++ {
		if a.Got[i] != b.Got[i] {
			return a.Got[i] < b.Got[i]
		}
		if a.Fail[i] != b.Fail[i] {
			return a.Fail[i] < b.Fail[i]
		}
		if a.Moved[i] != b.Moved[i] {
			return a.Moved[i] < b.Moved[i]
		}
		if a.Pend[i] != b.Pend[i] {
			return a.Pend[i] < b.Pend[i]
		}
	}
	if a.Jump != b.Jump {
		return a.Jump < b.Jump
	}
	if a.Anchor != b.Anchor {
		return a.Anchor < b.Anchor
	}
	if a.Faulty != b.Faulty {
		return a.Faulty < b.Faulty
	}
	if a.Insync != b.Insync {
		return a.Insync < b.Insync
	}
	return a.Budget < b.Budget
}

// canonFunc builds the full canonicalizer for p: clock-shift quotient,
// then the minimal representative over all node relabelings.
func canonFunc(p Params) func(State) State {
	perms := permutations(p.N)
	n := p.N
	return func(s State) State {
		s.canonicalize(n)
		best := s
		for _, perm := range perms[1:] { // perms[0] is identity
			if cand := permute(&s, n, perm); stateLess(&cand, &best) {
				best = cand
			}
		}
		return best
	}
}
