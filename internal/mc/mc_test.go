package mc

import (
	"strings"
	"testing"
)

// exploreClean runs an exploration that must reach closure with zero
// violations, logging the state-space size.
func exploreClean(t *testing.T, name string, p Params, r Rules) *Result {
	t.Helper()
	res, err := Explore(p, r)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	t.Logf("%s: %s", name, res.Summary())
	if !res.Complete {
		t.Fatalf("%s: exploration did not reach closure", name)
	}
	if res.Violation != nil {
		t.Fatalf("%s: unexpected violation:\n%s", name, res.Violation.String())
	}
	return res
}

// exploreViolating runs an exploration that must find a violation of the
// given invariant and returns it.
func exploreViolating(t *testing.T, name string, p Params, r Rules, invariant string) *Violation {
	t.Helper()
	res, err := Explore(p, r)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	t.Logf("%s: %s", name, res.Summary())
	if res.Violation == nil {
		t.Fatalf("%s: expected a %q violation, exploration was clean", name, invariant)
	}
	if res.Violation.Invariant != invariant {
		t.Fatalf("%s: expected invariant %q, got %q:\n%s",
			name, invariant, res.Violation.Invariant, res.Violation.String())
	}
	t.Logf("counterexample:\n%s", res.Violation.String())
	return res.Violation
}

// TestExhaustiveN3 explores the full default n=3, f=1 domain — sampling
// error ±1, message loss, one crash/recover with clock scrambling and
// arbitrary lies — to closure with zero invariant violations.
func TestExhaustiveN3(t *testing.T) {
	res := exploreClean(t, "n3", Default(3, 1), Rules{})
	if res.States < 10_000 {
		t.Fatalf("suspiciously small state space: %d states", res.States)
	}
}

// TestExhaustiveN4 explores n=4, f=1 to closure twice: the honest domain
// with ±1 sampling error, and the crash/recover + Byzantine-lie domain
// with exact readings (the error dimension is fully explored at n=3; the
// product of both at n=4 is out of plain-`go test` budget).
func TestExhaustiveN4(t *testing.T) {
	honest := Default(4, 1)
	honest.MaxCrash = 0
	honest.InitSpread = 1
	exploreClean(t, "n4-honest", honest, Rules{})

	crash := Default(4, 1)
	crash.InitSpread = 1
	crash.Errs = []int{0}
	crash.Lies = []int{16}
	crash.Scrambles = []int{16}
	exploreClean(t, "n4-crash", crash, Rules{})
}

// dropClampParams is a domain where the midpoint clamp is load-bearing:
// wide initial spread, exact readings. The faithful protocol stays within
// Δ/2+ε; dropping the clamp adjusts by the full spread.
func dropClampParams() Params {
	return Params{
		N: 3, F: 1,
		InitSpread: 6, Err: 0, Bound: 1,
		WayOff: 20, Envelope: 6, MaxClock: 40,
		Errs: []int{0}, MaxCrash: 0,
	}
}

// TestDropClampCounterexample: the seeded mutation of the acceptance
// criteria — dropping the Figure 1 midpoint clamp must yield a printed
// counterexample trace, on a domain the faithful protocol passes.
func TestDropClampCounterexample(t *testing.T) {
	exploreClean(t, "clamp-clean", dropClampParams(), Rules{})

	v := exploreViolating(t, "clamp-dropped", dropClampParams(), Rules{DropClamp: true}, InvStep)
	out := v.String()
	for _, want := range []string{"SendEstimate", "ReceiveReply", "ComputeAdjust", "ApplyAdjust", InvStep} {
		if !strings.Contains(out, want) {
			t.Errorf("counterexample missing %q:\n%s", want, out)
		}
	}
	if len(v.Trace) == 0 || v.Trace[len(v.Trace)-1].Action.Kind != ActApply {
		t.Errorf("counterexample must end at the violating ApplyAdjust:\n%s", out)
	}
}

// TestNoTrimCounterexample: disabling the f-trim breaks the quorum guard
// (the skip decision rides on the trimmed extremes reaching the infinite
// readings), exactly as core with F=0 adjusts on zero live estimates.
func TestNoTrimCounterexample(t *testing.T) {
	v := exploreViolating(t, "no-trim", Default(3, 1), Rules{NoTrim: true}, InvQuorum)
	if !strings.Contains(v.String(), "ComputeAdjust") {
		t.Errorf("counterexample should end in ComputeAdjust:\n%s", v.String())
	}
}

// TestZeroFillCounterexample: treating timeouts as zero estimates lets a
// node adjust with no live quorum.
func TestZeroFillCounterexample(t *testing.T) {
	p := Default(3, 1)
	p.MaxCrash = 0
	v := exploreViolating(t, "zero-fill", p, Rules{ZeroFill: true}, InvQuorum)
	if got := len(v.Trace); got > 6 {
		t.Errorf("BFS should find a short quorum counterexample, got %d steps", got)
	}
}

// TestOverBudgetCounterexample: two corruptions against a declared f=1
// drag an in-sync node onto the WayOff branch — the model analogue of
// exceeding the paper's f-faults-per-window budget (Definition 2).
func TestOverBudgetCounterexample(t *testing.T) {
	p := Default(3, 1)
	p.MaxCrash = 2
	v := exploreViolating(t, "over-budget", p, Rules{}, InvNoJump)
	crashes := 0
	for _, st := range v.Trace {
		if st.Action.Kind == ActCrash {
			crashes++
		}
	}
	if crashes != 2 {
		t.Errorf("over-budget counterexample should involve 2 crashes, got %d:\n%s", crashes, v.String())
	}
}

// TestExploreDeterministic: identical params and rules must reproduce the
// exact exploration — state counts and the counterexample rendering.
func TestExploreDeterministic(t *testing.T) {
	run := func(r Rules) string {
		res, err := Explore(Default(3, 1), r)
		if err != nil {
			t.Fatal(err)
		}
		s := res.Summary()
		if res.Violation != nil {
			s += "\n" + res.Violation.String()
		}
		return s
	}
	for _, r := range []Rules{{}, {NoTrim: true}} {
		if a, b := run(r), run(r); a != b {
			t.Errorf("exploration not deterministic under %+v:\n--- first\n%s\n--- second\n%s", r, a, b)
		}
	}
}

// TestParamsValidate pins the parameter guardrails.
func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"n too large", func(p *Params) { p.N = 6 }},
		{"n too small", func(p *Params) { p.N = 1 }},
		{"f too large", func(p *Params) { p.F = 2 }},
		{"below quorum", func(p *Params) { p.N = 2; p.F = 1 }},
		{"bound below err", func(p *Params) { p.Bound = 0 }},
		{"spread beyond envelope", func(p *Params) { p.InitSpread = 99 }},
		{"wayoff inside envelope", func(p *Params) { p.WayOff = 2 }},
		{"lie out of range", func(p *Params) { p.Lies = []int{500} }},
	}
	for _, tc := range cases {
		p := Default(3, 1)
		tc.mutate(&p)
		if _, err := Explore(p, Rules{}); err == nil {
			t.Errorf("%s: expected a validation error", tc.name)
		}
	}
	if _, err := Explore(Params{}, Rules{}); err == nil {
		t.Error("zero params must not validate")
	}
}

// TestActionString pins the counterexample vocabulary that
// docs/CONFORMANCE.md documents.
func TestActionString(t *testing.T) {
	cases := map[string]Action{
		"SendEstimate(p0)":             {Kind: ActSend, Node: 0},
		"ReceiveReply(p1<-p2, est=+3)": {Kind: ActReceive, Node: 1, Peer: 2, Val: 3},
		"Timeout(p0<-p1, lost)":        {Kind: ActTimeout, Node: 0, Peer: 1},
		"ComputeAdjust(p2, delta=-4)":  {Kind: ActCompute, Node: 2, Val: -4},
		"SkipRound(p1)":                {Kind: ActSkip, Node: 1},
		"ApplyAdjust(p0, delta=+2)":    {Kind: ActApply, Node: 0, Val: 2},
		"Crash(p1, clock:=+16)":        {Kind: ActCrash, Node: 1, Val: 16},
		"Recover(p1)":                  {Kind: ActRecover, Node: 1},
	}
	for want, a := range cases {
		if got := a.String(); got != want {
			t.Errorf("Action.String() = %q, want %q", got, want)
		}
	}
}

// TestConvergeMirror cross-checks the integer Figure 1 mirror on hand
// cases: trimming, clamping, WayOff branch, and the skip decision.
func TestConvergeMirror(t *testing.T) {
	cases := []struct {
		name     string
		f, w     int
		overs    []int
		unders   []int
		delta    int
		jump, ok bool
	}{
		{"all agree", 1, 10, []int{1, 1, 1}, []int{-1, -1, -1}, 0, false, true},
		{"clamped midpoint", 1, 10, []int{7, 7, 0}, []int{5, 5, 0}, 2, false, true},
		{"outlier trimmed", 1, 10, []int{-50, 1, 1}, []int{-52, -1, -1}, 0, false, true},
		{"way off", 1, 10, []int{-20, -14, 0}, []int{-22, -16, -2}, -15, true, true},
		{"skip on quorum loss", 1, 10, []int{0, inf, inf}, []int{0, -inf, -inf}, 0, false, false},
		{"one live peer anchors", 1, 10, []int{0, 4, inf}, []int{0, 2, -inf}, 0, false, true},
	}
	for _, tc := range cases {
		delta, jump, ok, _, _ := converge(tc.f, tc.w, tc.overs, tc.unders, Rules{})
		if delta != tc.delta || jump != tc.jump || ok != tc.ok {
			t.Errorf("%s: converge = (%d,%v,%v), want (%d,%v,%v)",
				tc.name, delta, jump, ok, tc.delta, tc.jump, tc.ok)
		}
	}
}
