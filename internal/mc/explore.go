package mc

import (
	"fmt"
	"strings"
)

// Invariant names, shared with docs/CONFORMANCE.md and the conformance
// bridge's violation vocabulary.
const (
	InvAgreement = "agreement" // in-sync good clocks within Envelope of each other
	InvStep      = "step"      // an in-sync adjustment bounded by Δ/2+ε
	InvNoJump    = "jump"      // an in-sync node never takes the WayOff branch
	InvQuorum    = "quorum"    // adjustments need ≥ f+1 live estimates of n ≥ 2f+1
	InvBlowup    = "blowup"    // canonical good clocks stay within MaxClock
)

// Step is one entry of a counterexample trace.
type Step struct {
	Action Action
	State  State
}

// Violation is a falsified invariant plus the action sequence reaching it
// from an initial state. BFS order makes the trace minimal in length over
// the explored interleavings.
type Violation struct {
	Invariant string
	Detail    string
	N         int // cluster size, for rendering
	Initial   State
	Trace     []Step
}

// Result summarizes one exhaustive exploration.
type Result struct {
	Params      Params
	Rules       Rules
	States      int  // distinct canonical states visited
	Transitions int  // transitions enumerated
	Depth       int  // deepest BFS level reached
	Complete    bool // frontier exhausted within MaxDepth/MaxStates
	Violation   *Violation
}

// stateInvariant checks the state-scoped invariants and returns the first
// falsified one ("" if none).
func stateInvariant(s *State, p *Params) (string, string) {
	n := p.N
	for i := 0; i < n; i++ {
		if !s.good(i) {
			continue
		}
		if s.insync(i) {
			for j := i + 1; j < n; j++ {
				if !s.good(j) || !s.insync(j) {
					continue
				}
				if d := int(s.Clock[i]) - int(s.Clock[j]); d > p.Envelope || d < -p.Envelope {
					return InvAgreement, fmt.Sprintf("in-sync clocks p%d=%d and p%d=%d differ by %d > Δ=%d",
						i, s.Clock[i], j, s.Clock[j], abs(d), p.Envelope)
				}
			}
		}
		if c := int(s.Clock[i]); c > p.MaxClock || c < -p.MaxClock {
			return InvBlowup, fmt.Sprintf("good clock p%d=%d beyond MaxClock=%d", i, c, p.MaxClock)
		}
	}
	return "", ""
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// node is one entry of the BFS bookkeeping: enough to reconstruct the
// action path to any visited state.
type bfsNode struct {
	parent int32
	act    Action
}

// Explore runs a breadth-first exhaustive search of the reachable state
// space under p and r, stopping at the first invariant violation (the
// returned trace is then minimal over BFS order) or at closure.
func Explore(p Params, r Rules) (*Result, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}

	res := &Result{Params: p, Rules: r, Complete: true}
	canon := canonFunc(p)
	visited := make(map[State]int32, 1<<16)
	var states []State
	var nodes []bfsNode

	add := func(s State, parent int32, act Action) (int32, bool) {
		if idx, ok := visited[s]; ok {
			return idx, false
		}
		idx := int32(len(states))
		visited[s] = idx
		states = append(states, s)
		nodes = append(nodes, bfsNode{parent: parent, act: act})
		return idx, true
	}

	// buildTrace reconstructs the action path to the violating transition
	// in a single consistent node labeling. Symmetry reduction stores each
	// canonical (relabeled) state, so the path is replayed from the root,
	// composing the per-step relabelings back into the root's frame.
	buildTrace := func(cur int32, act Action, child State) (State, []Step) {
		chain := []int32{cur}
		for nodes[cur].parent >= 0 {
			cur = nodes[cur].parent
			chain = append(chain, cur)
		}
		for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
			chain[l], chain[r] = chain[r], chain[l]
		}

		perms := permutations(p.N)
		sigma := make([]int, p.N) // current canonical frame → root frame
		for i := range sigma {
			sigma[i] = i
		}
		root := states[chain[0]]
		var steps []Step
		for t := 1; t <= len(chain); t++ {
			a, canonChild := act, child
			if t < len(chain) {
				a, canonChild = nodes[chain[t]].act, states[chain[t]]
			}
			parent := states[chain[t-1]]
			raw, found := applyAction(parent, a, p, r)
			if !found {
				// Replay mismatch should be impossible; degrade to the
				// canonical-frame step rather than panicking.
				steps = append(steps, Step{Action: a, State: canonChild})
				continue
			}
			steps = append(steps, Step{
				Action: relabelAction(a, sigma),
				State:  permute(&raw, p.N, sigma),
			})
			shifted := raw
			shifted.canonicalize(p.N)
			for _, pi := range perms {
				if permute(&shifted, p.N, pi) == canonChild {
					next := make([]int, p.N)
					for v := 0; v < p.N; v++ {
						next[pi[v]] = sigma[v] // σ'[π[v]] = σ[v]
					}
					sigma = next
					break
				}
			}
		}
		return root, steps
	}

	// Initial states: every clock assignment in [0, InitSpread]^N, all
	// nodes idle, honest, and in sync, full corruption budget.
	var enumInit func(i int, s State)
	enumInit = func(i int, s State) {
		if i == p.N {
			s.Insync = uint8((1 << uint(p.N)) - 1)
			s.Budget = uint8(p.MaxCrash)
			add(canon(s), -1, Action{})
			return
		}
		for c := 0; c <= p.InitSpread; c++ {
			s.Clock[i] = int8(c)
			enumInit(i+1, s)
		}
	}
	enumInit(0, State{})

	for _, s := range states {
		if inv, detail := stateInvariant(&s, &p); inv != "" {
			res.Violation = &Violation{Invariant: inv, Detail: detail, N: p.N, Initial: s}
			res.States = len(states)
			return res, nil
		}
	}

	head := 0
	levelEnd := len(states)
	depth := 0
	for head < len(states) {
		if head == levelEnd {
			depth++
			levelEnd = len(states)
			if p.MaxDepth > 0 && depth >= p.MaxDepth {
				res.Complete = false
				break
			}
		}
		cur := int32(head)
		s := states[head]
		head++

		var found *Violation
		successors(s, p, r, canon, func(sc succ) {
			if found != nil {
				return
			}
			res.Transitions++
			violation := sc.viol
			detail := sc.detail
			if violation == "" {
				if _, fresh := add(sc.state, cur, sc.act); !fresh {
					return
				}
				violation, detail = stateInvariant(&sc.state, &p)
				if violation == "" {
					return
				}
			}
			root, steps := buildTrace(cur, sc.act, sc.state)
			// State-scoped details were produced in the canonical child's
			// frame; regenerate them in the trace's consistent frame.
			if len(steps) > 0 {
				if inv, d := stateInvariant(&steps[len(steps)-1].State, &p); inv == violation {
					detail = d
				}
			}
			found = &Violation{
				Invariant: violation,
				Detail:    detail,
				N:         p.N,
				Initial:   root,
				Trace:     steps,
			}
		})
		if found != nil {
			res.Violation = found
			break
		}
		if len(states) > p.MaxStates {
			res.Complete = false
			break
		}
	}
	res.States = len(states)
	res.Depth = depth
	return res, nil
}

// render prints a compact one-line state summary for counterexamples.
func (s State) render(n int) string {
	var b strings.Builder
	b.WriteString("clocks[")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%+d", s.Clock[i])
	}
	b.WriteString("]")
	phases := []byte("IWR")
	b.WriteString(" phase[")
	for i := 0; i < n; i++ {
		b.WriteByte(phases[s.Phase[i]])
	}
	b.WriteString("]")
	mask := uint8((1 << uint(n)) - 1)
	if s.Faulty&mask != 0 {
		fmt.Fprintf(&b, " faulty=%0*b", n, s.Faulty&mask)
	}
	fmt.Fprintf(&b, " insync=%0*b", n, s.Insync&mask)
	return b.String()
}

// String renders the counterexample as a numbered action sequence — the
// format docs/CONFORMANCE.md documents and the tests pin.
func (v *Violation) String() string {
	if v == nil {
		return "<no violation>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invariant %q violated", v.Invariant)
	if v.Detail != "" {
		fmt.Fprintf(&b, ": %s", v.Detail)
	}
	b.WriteByte('\n')
	n := v.N
	if n < 1 || n > maxN {
		n = maxN
	}
	fmt.Fprintf(&b, "  init: %s\n", v.Initial.render(n))
	for i, st := range v.Trace {
		fmt.Fprintf(&b, "  %2d. %-36s %s\n", i+1, st.Action.String(), st.State.render(n))
	}
	return b.String()
}

// Summary renders a one-line result description for logs and CLI output.
func (r *Result) Summary() string {
	status := "complete"
	if !r.Complete {
		status = "bounded"
	}
	viol := "no violations"
	if r.Violation != nil {
		viol = fmt.Sprintf("VIOLATION(%s)", r.Violation.Invariant)
	}
	return fmt.Sprintf("mc n=%d f=%d: %d states, %d transitions, depth %d (%s), %s",
		r.Params.N, r.Params.F, r.States, r.Transitions, r.Depth, status, viol)
}
