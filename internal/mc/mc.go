// Package mc is an explicit-state bounded model checker for an abstracted
// Sync-round state machine, mirroring the action vocabulary of the
// incremental TLA+ ClockSync modules (SNIPPETS.md): SendEstimate,
// ReceiveReply, Timeout, ComputeAdjust (the fault-tolerant midpoint of
// Figure 1), ApplyAdjust, plus Crash/Recover. It exhaustively enumerates
// every interleaving of a small cluster (n ≤ 5, f ≤ 1) over discretized
// clocks and bounded sampling error, checks safety invariants on every
// reachable state, and prints counterexamples as action sequences.
//
// The abstraction, relative to internal/core:
//
//   - Clocks are small integers; drift is absorbed into the sampling-error
//     set Errs (the paper's ε), exactly as the analysis folds ρ·MaxWait
//     into the reading error.
//   - Message delays in [δ⁻, δ⁺] surface only through their observable
//     effect: an estimate of peer j is Clock[j]−Clock[i]+e with
//     e ∈ Errs = ±(δ⁺−δ⁻)/2, sampled at delivery time (so concurrent
//     adjustments make estimates stale, as in the real protocol).
//   - Timeouts are unconditional (any message may be lost) — a sound
//     over-approximation that subsumes crashed peers staying silent.
//   - SyncInt ≥ 2·MaxWait is abstracted as "while a node's round is open,
//     each peer applies at most one adjustment" (the Moved bitmask).
//   - A corrupted node answers estimate queries with arbitrary values from
//     Lies and its clock is scrambled; Recover restores honest behaviour
//     with the scrambled clock, and the node re-earns its agreement
//     obligation (the Insync ghost bit) only once an anchored round lands
//     it back inside the envelope — the model analogue of the paper's
//     recovered-node rejoin time.
//
// Invariants (see invariants.go): agreement envelope over in-sync good
// nodes, bounded adjustment Δ/2+ε for in-sync nodes, no WayOff jump by an
// in-sync node, quorum safety (an adjustment needs ≥ f+1 live estimates
// out of n ≥ 2f+1), and a clock-blowup guard.
package mc

import "fmt"

// maxN is the largest supported cluster size. State uses fixed-size arrays
// so that it is a comparable value usable directly as a map key.
const maxN = 5

// inf is the sentinel for an infinite over/under reading (timed-out
// estimate) inside the integer convergence mirror.
const inf = 1 << 20

// Params fixes the finite domains the checker enumerates. The zero value
// is not valid; call Default() or fill every field. All quantities are in
// the same dimensionless clock unit.
type Params struct {
	N int // cluster size, 2 ≤ N ≤ 5
	F int // fault bound the protocol is configured with, 0 ≤ F ≤ 1

	InitSpread int // initial good clocks enumerate [0, InitSpread]^N
	Err        int // sampling error bound ε: honest estimates draw e from Errs
	Bound      int // a: half-width attached to every estimate (over=d+a, under=d−a), ≥ Err
	WayOff     int // W: |extreme| beyond which the own clock is ignored (jump branch)
	Envelope   int // Δ: agreement bound checked between in-sync good nodes
	MaxStep    int // bounded-adjustment limit for in-sync nodes (Δ/2+ε; 0 ⇒ Envelope/2+Bound+Err)
	MaxClock   int // canonical |clock| cap for good nodes (blowup guard)

	Errs      []int // sampling errors enumerated for honest replies (default {−Err,+Err})
	Lies      []int // estimate values a corrupted peer may answer with
	Scrambles []int // clock values a crash may scramble to

	MaxCrash int // total corruption budget (the f-per-window abstraction)
	MaxOpen  int // max concurrently open rounds (bounds interleaving depth)

	MaxDepth  int // BFS depth bound; 0 = run to closure
	MaxStates int // state cap; exceeded ⇒ Result.Complete=false (0 ⇒ 4e6)
}

// Default returns the parameter set used by the exhaustive test suite: it
// explores to closure in well under a second for n=3 and keeps n=4
// tractable for plain `go test`.
func Default(n, f int) Params {
	return Params{
		N:          n,
		F:          f,
		InitSpread: 2,
		Err:        1,
		Bound:      1,
		WayOff:     10,
		Envelope:   4,
		MaxClock:   40,
		Errs:       []int{-1, 1},
		Lies:       []int{-16, 16},
		Scrambles:  []int{-16, 16},
		MaxCrash:   f,
		MaxOpen:    2,
	}
}

func (p Params) withDefaults() Params {
	if p.MaxStep == 0 {
		p.MaxStep = p.Envelope/2 + p.Bound + p.Err
	}
	if p.MaxStates == 0 {
		p.MaxStates = 4_000_000
	}
	if p.MaxOpen == 0 {
		p.MaxOpen = 2
	}
	if len(p.Errs) == 0 {
		p.Errs = []int{-p.Err, p.Err}
	}
	return p
}

func (p Params) validate() error {
	switch {
	case p.N < 2 || p.N > maxN:
		return fmt.Errorf("mc: N=%d out of range [2,%d]", p.N, maxN)
	case p.F < 0 || p.F > 1:
		return fmt.Errorf("mc: F=%d out of range [0,1]", p.F)
	case p.N < 2*p.F+1:
		return fmt.Errorf("mc: N=%d below quorum 2F+1=%d", p.N, 2*p.F+1)
	case p.Bound < p.Err:
		return fmt.Errorf("mc: Bound=%d below Err=%d", p.Bound, p.Err)
	case p.InitSpread > p.Envelope:
		return fmt.Errorf("mc: InitSpread=%d exceeds Envelope=%d", p.InitSpread, p.Envelope)
	case p.WayOff <= p.Envelope+p.Bound:
		return fmt.Errorf("mc: WayOff=%d must exceed Envelope+Bound=%d", p.WayOff, p.Envelope+p.Bound)
	case p.MaxClock < p.Envelope || p.MaxClock > 100:
		return fmt.Errorf("mc: MaxClock=%d out of range [Envelope,100]", p.MaxClock)
	}
	for _, v := range append(append([]int{}, p.Lies...), p.Scrambles...) {
		if v < -100 || v > 100 {
			return fmt.Errorf("mc: lie/scramble value %d out of range [-100,100]", v)
		}
	}
	return nil
}

// Rules selects deliberate protocol mutations. The zero value is the
// faithful protocol; each flag re-introduces a specific bug class so the
// suite can prove the invariants are load-bearing.
type Rules struct {
	// DropClamp makes the normal branch use the untrimmed midpoint
	// (m+M)/2 instead of (min(m,0)+max(M,0))/2 — dropping the clamp that
	// bounds a single adjustment by Δ/2+ε.
	DropClamp bool
	// NoTrim computes the extremes with f=0: the minimum over and maximum
	// under are used directly, so a single corrupted reading steers the
	// adjustment.
	NoTrim bool
	// ZeroFill makes timed-out estimates contribute 0 instead of ±∞ —
	// the classic quorum bug of treating silence as agreement.
	ZeroFill bool
}

// Phases of a node's round state machine.
const (
	phaseIdle  = 0 // between rounds
	phaseWait  = 1 // estimates outstanding (round open)
	phaseReady = 2 // adjustment computed, not yet applied
)

// State is one canonicalized configuration of the abstract cluster. It is
// a comparable value (fixed-size arrays only) and doubles as the visited-
// set map key.
type State struct {
	Clock  [maxN]int8       // canonical clock values
	Phase  [maxN]uint8      // phaseIdle/phaseWait/phaseReady
	Est    [maxN][maxN]int8 // Est[i][j]: i's sampled offset of j (valid if Got bit)
	Got    [maxN]uint8      // bitmask: estimate of peer j resolved (reply or timeout)
	Fail   [maxN]uint8      // bitmask: estimate of peer j timed out
	Moved  [maxN]uint8      // bitmask: peers that applied an adjust since i opened
	Pend   [maxN]int8       // computed adjustment awaiting ApplyAdjust
	Jump   uint8            // bitmask: pending adjustment took the WayOff branch
	Anchor uint8            // bitmask: pending adjustment was anchored (≤ F non-in-sync sources)
	Faulty uint8            // bitmask: currently corrupted
	Insync uint8            // ghost: node owes the agreement obligation
	Budget uint8            // remaining corruption budget
}

func bit(i int) uint8 { return 1 << uint(i) }

func (s *State) good(i int) bool   { return s.Faulty&bit(i) == 0 }
func (s *State) insync(i int) bool { return s.Insync&bit(i) != 0 }

// openRounds counts nodes with an open or computed-but-unapplied round.
func (s *State) openRounds(n int) int {
	c := 0
	for i := 0; i < n; i++ {
		if s.Phase[i] != phaseIdle {
			c++
		}
	}
	return c
}

// peersMask is the bitmask of all peers of i in an n-node cluster.
func peersMask(n, i int) uint8 {
	return uint8((1<<uint(n))-1) &^ bit(i)
}

// clampI8 bounds v into int8 range with margin; reachable values stay far
// inside this in any valid parameterization.
func clampI8(v int) int8 {
	if v > 120 {
		return 120
	}
	if v < -120 {
		return -120
	}
	return int8(v)
}

// canonicalize shifts all clocks so the minimum in-sync good clock (or the
// minimum good clock when no node is in sync) is zero. Estimates are
// relative offsets and unaffected. This quotients out the global time
// translation symmetry, keeping the reachable set finite.
func (s *State) canonicalize(n int) {
	base, found := 0, false
	for pass := 0; pass < 2 && !found; pass++ {
		for i := 0; i < n; i++ {
			if !s.good(i) {
				continue
			}
			if pass == 0 && !s.insync(i) {
				continue
			}
			if !found || int(s.Clock[i]) < base {
				base = int(s.Clock[i])
				found = true
			}
		}
	}
	if !found || base == 0 {
		return
	}
	for i := 0; i < n; i++ {
		s.Clock[i] = clampI8(int(s.Clock[i]) - base)
	}
}

// converge mirrors core.ConvergeVerdict (the paper's Figure 1) over small
// integers. overs and unders are the n readings including self (0,0);
// entries are ±inf for timed-out estimates. It returns the adjustment, the
// branch taken, whether an adjustment happens at all (ok=false ⇒ skip),
// and the trimmed extremes for invariant checks.
func converge(f, wayOff int, overs, unders []int, r Rules) (delta int, jumped, ok bool, m, M int) {
	trim := f
	if r.NoTrim {
		trim = 0
	}
	m = kthSmallest(overs, trim) // (trim+1)-st smallest over
	M = kthLargest(unders, trim) // (trim+1)-st largest under
	if m >= inf || M <= -inf {
		return 0, false, false, m, M
	}
	if m >= -wayOff && M <= wayOff {
		if r.DropClamp {
			delta = midpoint(m, M)
		} else {
			delta = midpoint(min(m, 0), max(M, 0))
		}
		return delta, false, true, m, M
	}
	return midpoint(m, M), true, true, m, M
}

// midpoint is the integer midpoint rounding toward zero, matching Go's
// truncating division over the float formula (a+b)/2.
func midpoint(a, b int) int { return (a + b) / 2 }

// kthSmallest returns the (k+1)-st smallest element by insertion sort over
// a scratch copy; inputs have at most maxN+? elements so O(n²) is free.
func kthSmallest(vals []int, k int) int {
	var buf [maxN]int
	s := buf[:len(vals)]
	copy(s, vals)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[k]
}

func kthLargest(vals []int, k int) int {
	var buf [maxN]int
	s := buf[:len(vals)]
	copy(s, vals)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] > s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[k]
}
