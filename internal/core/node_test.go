package core

import (
	"math"
	"testing"

	"clocksync/internal/clock"
	"clocksync/internal/des"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

// testCluster wires n Sync nodes over a full mesh with the given initial
// biases and drift slopes.
type testCluster struct {
	sim   *des.Sim
	net   *network.Network
	nodes []*Node
}

func defaultTestConfig(f int) Config {
	return Config{
		F:       f,
		SyncInt: 10 * simtime.Second,
		MaxWait: 100 * simtime.Millisecond,
		WayOff:  2 * simtime.Second,
	}
}

func newTestCluster(t *testing.T, n int, cfg Config, biases []simtime.Duration, slopes []float64) *testCluster {
	t.Helper()
	sim := des.New(99)
	net := network.New(sim, network.NewFullMesh(n), network.NewUniformDelay(5*simtime.Millisecond, 50*simtime.Millisecond))
	tc := &testCluster{sim: sim, net: net}
	for i := 0; i < n; i++ {
		slope := 1.0
		if i < len(slopes) {
			slope = slopes[i]
		}
		bias := simtime.Duration(0)
		if i < len(biases) {
			bias = biases[i]
		}
		h := protocol.NewHarness(i, sim, net, clock.NewLocal(clock.NewDrifting(0, simtime.Time(bias), slope)))
		nodeCfg := cfg
		// Stagger first executions; the protocol must not rely on phase.
		nodeCfg.FirstSync = simtime.Duration(i) * cfg.SyncInt / simtime.Duration(n)
		node := New(h, nodeCfg, net.Topology().Neighbors(i))
		tc.nodes = append(tc.nodes, node)
		node.Start()
	}
	return tc
}

func (tc *testCluster) biases(at simtime.Time) []float64 {
	out := make([]float64, len(tc.nodes))
	for i, n := range tc.nodes {
		out[i] = float64(n.Harness().Clock().Bias(at))
	}
	return out
}

func spread(xs []float64) float64 {
	min, max := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return max - min
}

func TestClusterConvergesWithoutFaults(t *testing.T) {
	// Initial biases spread over ±0.5 s; no faults, mild drift. After a few
	// rounds the spread must fall well below the initial spread and stay
	// within the Theorem 5 deviation bound for these parameters (≈ 0.83 s).
	biases := []simtime.Duration{-0.5, -0.2, 0.1, 0.5}
	slopes := []float64{1 + 1e-4, 1 - 1e-4, 1, 1 + 5e-5}
	tc := newTestCluster(t, 4, defaultTestConfig(1), biases, slopes)
	tc.sim.RunUntil(300)
	final := tc.biases(300)
	if s := spread(final); s > 0.2 {
		t.Fatalf("cluster did not converge: spread=%v biases=%v", s, final)
	}
}

func TestClusterStaysConvergedLongRun(t *testing.T) {
	biases := []simtime.Duration{0.05, -0.05, 0, 0.02}
	slopes := []float64{1 + 1e-4, 1 - 1e-4, 1 + 2e-5, 1 - 7e-5}
	tc := newTestCluster(t, 4, defaultTestConfig(1), biases, slopes)
	// Sample the spread every 50 s over an hour.
	worst := 0.0
	for hor := simtime.Time(50); hor <= 3600; hor += 50 {
		tc.sim.RunUntil(hor)
		if s := spread(tc.biases(hor)); s > worst {
			worst = s
		}
	}
	// Theorem 5 bound for ε≈50ms: Δ ≈ 16ε ≈ 0.8 s; typical behaviour is far
	// better. Require staying under half the bound.
	if worst > 0.4 {
		t.Fatalf("spread drifted to %v over long run", worst)
	}
}

func TestFarNodeTriggersWayOffAndRecovers(t *testing.T) {
	// One node starts 100 s away — far beyond WayOff. It must take the
	// "ignore own clock" branch and converge geometrically; Sync recovery
	// takes O(log(offset/Δ)) rounds, so 300 s (a handful of rounds) is ample.
	biases := []simtime.Duration{0, 0, 0, 100 * simtime.Second}
	tc := newTestCluster(t, 4, defaultTestConfig(1), biases, nil)
	tc.sim.RunUntil(300)
	final := tc.biases(300)
	if s := spread(final); s > 0.2 {
		t.Fatalf("far node failed to recover: %v", final)
	}
	if tc.nodes[3].Stats().WayOffTriggers == 0 {
		t.Fatal("far node never took the WayOff branch")
	}
	for i := 0; i < 3; i++ {
		if tc.nodes[i].Stats().WayOffTriggers != 0 {
			t.Fatalf("well-synchronized node %d took the WayOff branch", i)
		}
	}
}

func TestGoodNodesUnmovedByFarNode(t *testing.T) {
	// Property 1: the n−f good biases (all near 0) must stay near 0 even
	// though one node is 100 s away — the trimming discards its influence.
	biases := []simtime.Duration{0, 0, 0, 100 * simtime.Second}
	tc := newTestCluster(t, 4, defaultTestConfig(1), biases, nil)
	tc.sim.RunUntil(300)
	for i := 0; i < 3; i++ {
		if b := math.Abs(float64(tc.nodes[i].Harness().Clock().Bias(300))); b > 0.1 {
			t.Fatalf("good node %d dragged to bias %v", i, b)
		}
	}
}

func TestSyncCadenceOneToTwoPerT(t *testing.T) {
	// §4: during any interval of length T = (1+ρ)SyncInt + 2MaxWait, every
	// non-faulty processor completes at least one and at most two Syncs.
	cfg := defaultTestConfig(1)
	tc := newTestCluster(t, 4, cfg, nil, []float64{1 + 1e-4, 1 - 1e-4, 1, 1})
	tType := simtime.Duration((1+1e-4)*float64(cfg.SyncInt)) + 2*cfg.MaxWait

	prev := make([]int, 4)
	tc.sim.RunUntil(simtime.Time(tType)) // warm-up window
	for i, n := range tc.nodes {
		prev[i] = n.Stats().Syncs
	}
	for w := 1; w <= 20; w++ {
		tc.sim.RunUntil(simtime.Time(tType) * simtime.Time(w+1))
		for i, n := range tc.nodes {
			got := n.Stats().Syncs - prev[i]
			if got < 1 || got > 2 {
				t.Fatalf("window %d: node %d completed %d Syncs, want 1..2", w, i, got)
			}
			prev[i] = n.Stats().Syncs
		}
	}
}

func TestFaultyNodeSkipsButAlarmSurvives(t *testing.T) {
	tc := newTestCluster(t, 4, defaultTestConfig(1), nil, nil)
	victim := tc.nodes[0]
	tc.sim.At(15, func() { victim.Harness().Corrupt(smashBehavior{offset: 500}) })
	tc.sim.At(100, func() { victim.Harness().Release() })
	tc.sim.RunUntil(400)
	st := victim.Stats()
	if st.Skipped == 0 {
		t.Fatal("faulty node never skipped a tick")
	}
	// After release the node must rejoin: bias back near 0.
	if b := math.Abs(float64(victim.Harness().Clock().Bias(400))); b > 0.2 {
		t.Fatalf("victim did not recover after release: bias=%v", b)
	}
	if st2 := victim.Stats(); st2.WayOffTriggers == 0 {
		t.Fatal("victim with a 500 s smashed clock should have tripped WayOff")
	}
}

func TestByzantineLiarDoesNotBreakBound(t *testing.T) {
	// One permanently-corrupted node reports wild values; the three good
	// nodes (n=4, f=1) must stay synchronized.
	tc := newTestCluster(t, 4, defaultTestConfig(1), nil, []float64{1 + 1e-4, 1 - 1e-4, 1, 1})
	tc.sim.At(1, func() { tc.nodes[3].Harness().Corrupt(oscillatingLiar{}) })
	tc.sim.RunUntil(1800)
	good := tc.biases(1800)[:3]
	if s := spread(good); s > 0.4 {
		t.Fatalf("good nodes diverged under Byzantine liar: spread=%v", s)
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	sim := des.New(1)
	net := network.New(sim, network.NewFullMesh(2), network.ConstantDelay{D: 1})
	h := protocol.NewHarness(0, sim, net, clock.NewLocal(clock.NewDrifting(0, 0, 1)))
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config must panic")
		}
	}()
	New(h, Config{F: -1, SyncInt: 10, MaxWait: 1, WayOff: 1}, []int{1})
}

// smashBehavior sets the victim's clock far away on corruption and stays
// silent while in control.
type smashBehavior struct {
	offset simtime.Duration
}

func (smashBehavior) RespondTime(*protocol.Harness, int, simtime.Time) (simtime.Time, bool) {
	return 0, false
}

func (b smashBehavior) OnCorrupt(h *protocol.Harness, now simtime.Time) {
	h.Clock().SetAdj(b.offset)
}

func (smashBehavior) OnRelease(*protocol.Harness, simtime.Time) {}

// oscillatingLiar replies with alternating ±1000 s readings.
type oscillatingLiar struct{}

func (oscillatingLiar) RespondTime(h *protocol.Harness, peer int, now simtime.Time) (simtime.Time, bool) {
	if peer%2 == 0 {
		return now.Add(1000), true
	}
	return now.Add(-1000), true
}

func (oscillatingLiar) OnCorrupt(*protocol.Harness, simtime.Time) {}
func (oscillatingLiar) OnRelease(*protocol.Harness, simtime.Time) {}
