package core

import (
	"math"
	"testing"

	"clocksync/internal/clock"
	"clocksync/internal/des"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

// cachedCluster builds a cluster running the §3.1 cached-estimation variant.
func cachedCluster(t *testing.T, refresh simtime.Duration, invalidate bool, biases []simtime.Duration) *testCluster {
	t.Helper()
	cfg := defaultTestConfig(1)
	cfg.CachedEstimation = true
	cfg.CacheRefresh = refresh
	cfg.CacheInvalidateOnAdjust = invalidate
	return newTestCluster(t, 4, cfg, biases, nil)
}

func TestCachedEstimationConvergesInSteadyState(t *testing.T) {
	// With a fast refresh (SyncInt/4) and small offsets, the cached variant
	// behaves almost like the direct one.
	biases := []simtime.Duration{-0.3, -0.1, 0.1, 0.3}
	tc := cachedCluster(t, 2500*simtime.Millisecond, false, biases)
	tc.sim.RunUntil(400)
	if s := spread(tc.biases(400)); s > 0.2 {
		t.Fatalf("cached variant did not converge: spread=%v", s)
	}
	if tc.nodes[0].Cache() == nil || tc.nodes[0].Cache().Sweeps() == 0 {
		t.Fatal("cache never swept")
	}
}

func TestStaleCacheBreaksRecovery(t *testing.T) {
	// §3.1's warning made concrete: with a slow cache (refresh 2.5×SyncInt)
	// a node recovering from a 100 s smash applies its WayOff jump, but the
	// next Syncs still see the pre-jump estimates and jump again — the bias
	// overshoots far past the good range before the cache catches up. The
	// direct variant (core tests) recovers monotonically; here we assert
	// the overshoot exists, which is exactly why Definition 4 matters.
	biases := []simtime.Duration{0, 0, 0, 100}
	tc := cachedCluster(t, 25*simtime.Second, false, biases)
	overshoot := 0.0
	for at := simtime.Time(1); at <= 600; at++ {
		tc.sim.RunUntil(at)
		b := float64(tc.nodes[3].Harness().Clock().Bias(at))
		if -b > overshoot {
			overshoot = -b // how far below the good range (0) it swings
		}
	}
	if overshoot < 10 {
		t.Fatalf("expected a large overshoot from stale cached estimates, got %v", overshoot)
	}
}

func TestInvalidateOnAdjustRepairsRecovery(t *testing.T) {
	// Same slow cache, but the repaired variant invalidates after each
	// adjustment: the node never applies a stale offset twice, so there is
	// no significant overshoot and it rejoins.
	biases := []simtime.Duration{0, 0, 0, 100}
	tc := cachedCluster(t, 25*simtime.Second, true, biases)
	overshoot := 0.0
	for at := simtime.Time(1); at <= 600; at++ {
		tc.sim.RunUntil(at)
		b := float64(tc.nodes[3].Harness().Clock().Bias(at))
		if -b > overshoot {
			overshoot = -b
		}
	}
	if overshoot > 1 {
		t.Fatalf("repaired variant overshot by %v", overshoot)
	}
	if b := math.Abs(float64(tc.nodes[3].Harness().Clock().Bias(600))); b > 0.2 {
		t.Fatalf("repaired variant did not recover: bias=%v", b)
	}
}

func TestCacheInvalidatedOnRelease(t *testing.T) {
	tc := cachedCluster(t, 2500*simtime.Millisecond, true, nil)
	victim := tc.nodes[1]
	tc.sim.At(30, func() { victim.Harness().Corrupt(smashBehavior{offset: 50}) })
	tc.sim.At(60, func() { victim.Harness().Release() })
	tc.sim.RunUntil(65)
	// Release wipes the cache (its contents were adversary-writable); any
	// entry present shortly afterwards must come from a post-release sweep.
	// Entries that survived the break-in would be ≥ 30 s old.
	for _, peer := range []int{0, 2, 3} {
		if age, ok := victim.Cache().Age(peer); ok && age > 6 {
			t.Fatalf("stale cache entry for peer %d survived release (age %v)", peer, age)
		}
	}
	// And the node still recovers through fresh sweeps.
	tc.sim.RunUntil(400)
	if b := math.Abs(float64(victim.Harness().Clock().Bias(400))); b > 0.2 {
		t.Fatalf("victim did not recover: bias=%v", b)
	}
}

func TestCacheAgeTracksStaleness(t *testing.T) {
	sim := des.New(3)
	net := network.New(sim, network.NewFullMesh(2), network.ConstantDelay{D: simtime.Millisecond})
	h0 := protocol.NewHarness(0, sim, net, clock.NewLocal(clock.NewDrifting(0, 0, 1)))
	_ = protocol.NewHarness(1, sim, net, clock.NewLocal(clock.NewDrifting(0, 0, 1)))
	cache := protocol.NewEstimateCache(h0, []int{1}, 10, 1)
	cache.Start()
	sim.RunUntil(11) // first sweep at local 10, reply ~2ms later
	age, ok := cache.Age(1)
	if !ok {
		t.Fatal("no cache entry after first sweep")
	}
	if age < 0 || age > 1 {
		t.Fatalf("age just after refresh: %v", age)
	}
	sim.RunUntil(19)
	age, _ = cache.Age(1)
	if age < 7 || age > 9.1 {
		t.Fatalf("age before next sweep: %v", age)
	}
	ests := cache.GetAll()
	if len(ests) != 1 || !ests[0].OK {
		t.Fatalf("GetAll: %+v", ests)
	}
	cache.Invalidate()
	if ests := cache.GetAll(); ests[0].OK {
		t.Fatal("invalidated cache served an estimate")
	}
}

func TestCachePanics(t *testing.T) {
	sim := des.New(1)
	net := network.New(sim, network.NewFullMesh(2), network.ConstantDelay{D: 1})
	h := protocol.NewHarness(0, sim, net, clock.NewLocal(clock.NewDrifting(0, 0, 1)))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero refresh must panic")
			}
		}()
		protocol.NewEstimateCache(h, []int{1}, 0, 1)
	}()
	c := protocol.NewEstimateCache(h, []int{1}, 1, 1)
	c.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start must panic")
		}
	}()
	c.Start()
}
