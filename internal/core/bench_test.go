package core

import (
	"math/rand"
	"testing"

	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

func benchEstimates(n int) []protocol.Estimate {
	rng := rand.New(rand.NewSource(1))
	ests := make([]protocol.Estimate, n)
	for i := range ests {
		ests[i] = protocol.Estimate{
			Peer: i,
			D:    simtime.Duration(rng.NormFloat64()),
			A:    simtime.Duration(rng.Float64() * 0.05),
			OK:   true,
		}
	}
	return ests
}

// BenchmarkConverge measures the convergence function across cluster sizes:
// it runs once per Sync per processor, so its cost scales the protocol's CPU
// footprint.
func BenchmarkConverge(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		ests := benchEstimates(n)
		f := (n - 1) / 3
		b.Run(itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := Converge(f, 1, ests); !ok {
					b.Fatal("unsafe")
				}
			}
		})
	}
}

// BenchmarkConvergeWorstCaseInput exercises quickselect on adversarially
// ordered inputs (sorted, reversed) where a naive pivot would go quadratic.
func BenchmarkConvergeWorstCaseInput(b *testing.B) {
	n := 256
	sorted := make([]protocol.Estimate, n)
	for i := range sorted {
		sorted[i] = protocol.Estimate{Peer: i, D: simtime.Duration(i), OK: true}
	}
	reversed := make([]protocol.Estimate, n)
	for i := range reversed {
		reversed[i] = protocol.Estimate{Peer: i, D: simtime.Duration(n - i), OK: true}
	}
	for name, ests := range map[string][]protocol.Estimate{"sorted": sorted, "reversed": reversed} {
		ests := ests
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Converge(85, 1000000, ests)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
