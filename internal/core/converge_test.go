package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

// est builds an exact estimate (a=0) of offset d.
func est(d float64) protocol.Estimate {
	return protocol.Estimate{D: simtime.Duration(d), A: 0, OK: true}
}

// estA builds an estimate of offset d with error bound a.
func estA(d, a float64) protocol.Estimate {
	return protocol.Estimate{D: simtime.Duration(d), A: simtime.Duration(a), OK: true}
}

func failed() protocol.Estimate { return protocol.FailedEstimate(0) }

func TestConvergeAllAgreeingIsIdentity(t *testing.T) {
	// All processors report offset 0 → no adjustment.
	ests := []protocol.Estimate{est(0), est(0), est(0), est(0)}
	delta, ok := Converge(1, 10, ests)
	if !ok || delta != 0 {
		t.Fatalf("got (%v, %v)", delta, ok)
	}
}

func TestConvergeClippedBranchHandComputed(t *testing.T) {
	// f=1, WayOff=10. Estimates (exact): self 0 and peers {1, 2, 3, 100}.
	// overs = unders = {0, 1, 2, 3, 100}.
	// m = 2nd smallest = 1; M = 2nd largest = 3.
	// Clipped branch: m ≥ −10 and M ≤ 10 → delta = (min(1,0)+max(3,0))/2 = 1.5.
	ests := []protocol.Estimate{est(0), est(1), est(2), est(3), est(100)}
	delta, ok := Converge(1, 10, ests)
	if !ok || math.Abs(float64(delta)-1.5) > 1e-12 {
		t.Fatalf("got (%v, %v), want 1.5", delta, ok)
	}
}

func TestConvergeHalfwayWhenOwnClockOutsideRange(t *testing.T) {
	// Own clock below the trimmed range but within WayOff: move half-way.
	// f=1, WayOff=100. Estimates: self 0, peers {8, 9, 10, 11}.
	// m = 2nd smallest of {0,8,9,10,11} = 8; M = 2nd largest = 10.
	// delta = (min(8,0)+max(10,0))/2 = (0+10)/2 = 5 — half-way, not all the way.
	ests := []protocol.Estimate{est(0), est(8), est(9), est(10), est(11)}
	delta, ok := Converge(1, 100, ests)
	if !ok || math.Abs(float64(delta)-5) > 1e-12 {
		t.Fatalf("got (%v, %v), want 5", delta, ok)
	}
}

func TestConvergeWayOffBranchJumpsToMidpoint(t *testing.T) {
	// Own clock very far (peers all report ≈ +1000, beyond WayOff=10):
	// m = 2nd smallest of {0, 999, 1000, 1001, 1002} = 999
	// M = 2nd largest = 1001; m ≥ −10 holds but M > 10 → else branch:
	// delta = (999+1001)/2 = 1000 — the full jump that makes recovery fast.
	ests := []protocol.Estimate{est(0), est(999), est(1000), est(1001), est(1002)}
	delta, ok := Converge(1, 10, ests)
	if !ok || math.Abs(float64(delta)-1000) > 1e-12 {
		t.Fatalf("got (%v, %v), want 1000", delta, ok)
	}
}

func TestConvergeNegativeWayOffBranch(t *testing.T) {
	// Symmetric case: peers far below.
	ests := []protocol.Estimate{est(0), est(-999), est(-1000), est(-1001), est(-1002)}
	delta, ok := Converge(1, 10, ests)
	if !ok || math.Abs(float64(delta)+1000) > 1e-12 {
		t.Fatalf("got (%v, %v), want -1000", delta, ok)
	}
}

func TestConvergeUsesErrorBounds(t *testing.T) {
	// Overestimates and underestimates diverge when a > 0.
	// f=1: ests self(0±0), peers 4±1, 6±2, 8±1.
	// overs  = {0, 5, 8, 9}  → m = 2nd smallest = 5
	// unders = {0, 3, 4, 7}  → M = 2nd largest = 4
	// delta = (min(5,0)+max(4,0))/2 = 2.
	ests := []protocol.Estimate{est(0), estA(4, 1), estA(6, 2), estA(8, 1)}
	delta, ok := Converge(1, 100, ests)
	if !ok || math.Abs(float64(delta)-2) > 1e-12 {
		t.Fatalf("got (%v, %v), want 2", delta, ok)
	}
}

func TestConvergeTimeoutsActAsExtremes(t *testing.T) {
	// A failed estimate contributes +∞ over and −∞ under; with f=1 a single
	// failure is trimmed and the rest decide.
	ests := []protocol.Estimate{est(0), est(2), est(4), failed()}
	// overs = {0, 2, 4, +inf} → m = 2nd smallest = 2
	// unders = {0, 2, 4, -inf} → M = 2nd largest = 2
	delta, ok := Converge(1, 100, ests)
	if !ok || math.Abs(float64(delta)-1) > 1e-12 {
		t.Fatalf("got (%v, %v), want 1", delta, ok)
	}
}

func TestConvergeTooManyFailuresIsUnsafe(t *testing.T) {
	// With f=1 and two failures among four estimates, both trimmed extremes
	// can be infinite; the function must refuse to adjust.
	ests := []protocol.Estimate{est(0), failed(), failed(), failed()}
	if _, ok := Converge(1, 100, ests); ok {
		t.Fatal("expected ok=false with 3 failures of 4")
	}
}

func TestConvergeTooFewEstimates(t *testing.T) {
	if _, ok := Converge(2, 100, []protocol.Estimate{est(0), est(1)}); ok {
		t.Fatal("expected ok=false with fewer than 2f+1 estimates")
	}
}

func TestConvergeFZero(t *testing.T) {
	// f=0 degenerates to min/max without trimming.
	ests := []protocol.Estimate{est(0), est(10)}
	// m = 1st smallest = 0, M = 1st largest = 10 → (min(0,0)+max(10,0))/2 = 5.
	delta, ok := Converge(0, 100, ests)
	if !ok || delta != 5 {
		t.Fatalf("got (%v, %v), want 5", delta, ok)
	}
}

func TestConvergeNegationSymmetry(t *testing.T) {
	f := func(raw []int8, fRaw uint8) bool {
		if len(raw) < 3 {
			return true
		}
		fv := int(fRaw) % (len(raw) / 2)
		if len(raw) < 2*fv+1 {
			return true
		}
		pos := make([]protocol.Estimate, len(raw))
		neg := make([]protocol.Estimate, len(raw))
		for i, v := range raw {
			pos[i] = est(float64(v))
			neg[i] = est(-float64(v))
		}
		d1, ok1 := Converge(fv, 50, pos)
		d2, ok2 := Converge(fv, 50, neg)
		return ok1 == ok2 && math.Abs(float64(d1+d2)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConvergeMonotoneInEachEstimate(t *testing.T) {
	// Increasing any single estimate's offset never decreases the output —
	// the property that lets the proof bound the convergence function by
	// bounding its inputs.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 2000; trial++ {
		n := 4 + rng.Intn(6)
		fv := rng.Intn(n / 3)
		if n < 2*fv+1 {
			continue
		}
		ests := make([]protocol.Estimate, n)
		for i := range ests {
			ests[i] = est(rng.NormFloat64() * 20)
		}
		wayOffV := simtime.Duration(5 + rng.Float64()*30)
		d1, ok1 := Converge(fv, wayOffV, ests)
		if !ok1 {
			t.Fatal("unexpected unsafe with finite estimates")
		}
		// Bump one estimate upward.
		i := rng.Intn(n)
		bumped := append([]protocol.Estimate(nil), ests...)
		bumped[i] = est(float64(bumped[i].D) + rng.Float64()*30)
		d2, _ := Converge(fv, wayOffV, bumped)
		if float64(d2) < float64(d1)-1e-9 {
			t.Fatalf("monotonicity violated: %v -> %v after raising estimate %d", d1, d2, i)
		}
	}
}

func TestConvergeByzantineContainment(t *testing.T) {
	// Property 1 of the proof, in function form: with n ≥ 3f+1 and all
	// honest over/underestimates inside [−X, X] (X ≤ WayOff), f arbitrary
	// Byzantine estimates cannot push the adjusted clock outside [−X, X];
	// in fact |delta| ≤ X/2, and the WayOff branch is never taken.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 2000; trial++ {
		fv := 1 + rng.Intn(3)
		n := 3*fv + 1 + rng.Intn(4)
		x := 1 + rng.Float64()*10
		wayOffV := simtime.Duration(x * (1 + rng.Float64()))
		ests := make([]protocol.Estimate, 0, n)
		// n−f honest estimates with over/under inside [−X, X].
		for i := 0; i < n-fv; i++ {
			d := (rng.Float64()*2 - 1) * x
			maxA := math.Min(x-math.Abs(d), x/4)
			a := rng.Float64() * math.Max(maxA, 0)
			ests = append(ests, estA(d, a))
		}
		// f Byzantine estimates anywhere, including failures.
		for i := 0; i < fv; i++ {
			if rng.Intn(4) == 0 {
				ests = append(ests, failed())
			} else {
				ests = append(ests, est(rng.NormFloat64()*1e6))
			}
		}
		rng.Shuffle(len(ests), func(i, j int) { ests[i], ests[j] = ests[j], ests[i] })
		delta, ok := Converge(fv, wayOffV, ests)
		if !ok {
			t.Fatalf("trial %d: unexpectedly unsafe", trial)
		}
		if math.Abs(float64(delta)) > x/2+1e-9 {
			t.Fatalf("trial %d: |delta|=%v exceeds X/2=%v", trial, delta, x/2)
		}
		if wayOff(fv, wayOffV, ests) {
			t.Fatalf("trial %d: WayOff branch taken despite honest majority in range", trial)
		}
	}
}

func TestConvergeMatchesSortOracle(t *testing.T) {
	// The quickselect order statistics must agree with a plain sort.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 1000; trial++ {
		n := 3 + rng.Intn(10)
		fv := rng.Intn((n + 1) / 2)
		if n < 2*fv+1 {
			continue
		}
		ests := make([]protocol.Estimate, n)
		overs := make([]float64, n)
		unders := make([]float64, n)
		for i := range ests {
			d := rng.NormFloat64() * 10
			a := rng.Float64() * 3
			ests[i] = estA(d, a)
			overs[i] = d + a
			unders[i] = d - a
		}
		sort.Float64s(overs)
		sort.Float64s(unders)
		m := overs[fv]            // (f+1)-st smallest
		mm := unders[n-fv-1]      // (f+1)-st largest
		w := 5 + rng.Float64()*20 // random WayOff
		var want float64
		if m >= -w && mm <= w {
			want = (math.Min(m, 0) + math.Max(mm, 0)) / 2
		} else {
			want = (m + mm) / 2
		}
		got, ok := Converge(fv, simtime.Duration(w), ests)
		if !ok || math.Abs(float64(got)-want) > 1e-9 {
			t.Fatalf("trial %d: got (%v, %v), oracle %v", trial, got, ok, want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{F: 1, SyncInt: 10, MaxWait: 1, WayOff: 5}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{F: -1, SyncInt: 10, MaxWait: 1, WayOff: 5},
		{F: 1, SyncInt: 10, MaxWait: 0, WayOff: 5},
		{F: 1, SyncInt: 1, MaxWait: 1, WayOff: 5},
		{F: 1, SyncInt: 10, MaxWait: 1, WayOff: 0},
		{F: 1, SyncInt: 10, MaxWait: 1, WayOff: 5, FirstSync: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestKthSelectAdversarialInputs(t *testing.T) {
	// Sorted, reverse-sorted, constant and infinite-laden inputs.
	inputs := [][]float64{
		{1, 2, 3, 4, 5, 6, 7},
		{7, 6, 5, 4, 3, 2, 1},
		{5, 5, 5, 5, 5},
		{math.Inf(1), 1, math.Inf(-1), 2, 3},
	}
	for _, in := range inputs {
		for k := 1; k <= len(in); k++ {
			cp1 := append([]float64(nil), in...)
			cp2 := append([]float64(nil), in...)
			sort.Float64s(cp2)
			if got := kthSmallest(cp1, k); got != cp2[k-1] {
				t.Fatalf("kthSmallest(%v, %d) = %v, want %v", in, k, got, cp2[k-1])
			}
			cp3 := append([]float64(nil), in...)
			if got := kthLargest(cp3, k); got != cp2[len(in)-k] {
				t.Fatalf("kthLargest(%v, %d) = %v, want %v", in, k, got, cp2[len(in)-k])
			}
		}
	}
}
