package core

import (
	"math"
	"math/rand"
	"testing"

	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

// figure2Step implements the bias formulation of Figure 2 literally: given
// processor p's bias B_p, the biases reported for the others as
// over/underestimates B̄_q = B_p + d̄_q and B̲_q = B_p + d̲_q, compute the
// new bias directly:
//
//	B(m) = (f+1)-st smallest overestimate of a bias
//	B(M) = (f+1)-st largest underestimate of a bias
//	if B_p − B(m) ≤ WayOff and B(M) − B_p ≤ WayOff:
//	    B_p ← (min(B(m), B_p) + max(B(M), B_p)) / 2
//	else:
//	    B_p ← (B(m) + B(M)) / 2
func figure2Step(f int, wayOff, bp float64, ests []protocol.Estimate) float64 {
	overs := make([]float64, len(ests))
	unders := make([]float64, len(ests))
	for i, e := range ests {
		overs[i] = bp + float64(e.Over())
		unders[i] = bp + float64(e.Under())
	}
	bm := kthSmallest(overs, f+1)
	bM := kthLargest(unders, f+1)
	if bp-bm <= wayOff && bM-bp <= wayOff {
		return (math.Min(bm, bp) + math.Max(bM, bp)) / 2
	}
	return (bm + bM) / 2
}

// TestFigure1Figure2Equivalence checks the identity the analysis rests on:
// the clock-value formulation (Figure 1, what the implementation runs) and
// the bias formulation (Figure 2, what the proof reasons about) produce the
// same result — new bias = old bias + Converge(d-estimates) — for random
// inputs on both branches.
func TestFigure1Figure2Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5000; trial++ {
		n := 4 + rng.Intn(10)
		fv := rng.Intn(n / 3)
		if n < 2*fv+1 {
			continue
		}
		wayOffV := 1 + rng.Float64()*10
		bp := rng.NormFloat64() * 10
		ests := make([]protocol.Estimate, n)
		for i := range ests {
			// Mix of near, far, and exact estimates, plus self.
			var d float64
			switch rng.Intn(3) {
			case 0:
				d = rng.NormFloat64()
			case 1:
				d = rng.NormFloat64() * 50
			default:
				d = 0
			}
			ests[i] = protocol.Estimate{
				D:  simtime.Duration(d),
				A:  simtime.Duration(rng.Float64()),
				OK: true,
			}
		}
		delta, ok := Converge(fv, simtime.Duration(wayOffV), ests)
		if !ok {
			t.Fatalf("trial %d: converge unexpectedly unsafe", trial)
		}
		got := bp + float64(delta)
		want := figure2Step(fv, wayOffV, bp, ests)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("trial %d: Figure 1 gives %v, Figure 2 gives %v (bp=%v)",
				trial, got, want, bp)
		}
	}
}
