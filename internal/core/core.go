// Package core implements the paper's contribution: the Sync clock
// synchronization protocol of Figure 1.
//
// Every SyncInt units of local time, a processor estimates the clock offset
// of every peer (plus itself, trivially 0±0), turns each estimate into an
// overestimate d̄ = d+a and an underestimate d̲ = d−a, and computes
//
//	m = the (f+1)-st smallest overestimate
//	M = the (f+1)-st largest underestimate
//
// The trimming discards anything f Byzantine processors can fabricate: at
// least one of the f+1 smallest overestimates is honest, so m is at least
// the smallest honest offset (and symmetrically for M). Then:
//
//	if m ≥ −WayOff and M ≤ WayOff:   adj += (min(m,0) + max(M,0))/2
//	else:                            adj += (m+M)/2
//
// The first branch is the normal case — the clock moves halfway toward the
// trimmed range, never ignoring its own current value. The second branch is
// what makes recovery work: a processor that finds itself WayOff-far from
// the others concludes its own clock is worthless and jumps to the midpoint
// of the trimmed range. Minimal-correction convergence functions (e.g.
// Fetzer–Cristian '95) lack this escape hatch, which is exactly why they may
// never re-synchronize a recovered processor (§1.1).
package core

import (
	"fmt"
	"math"
	"sync"

	"clocksync/internal/obs"
	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

// Config parameterizes a Sync node. The constraints (§3.2): SyncInt ≥
// 2·MaxWait ≥ 4δ and WayOff ≥ Δ + ε. Values may overestimate the true
// network constants by a multiplicative factor without much harm (§3.3,
// "Known values"); experiment E11 quantifies that claim.
type Config struct {
	F       int              // trimming depth = per-period fault budget
	SyncInt simtime.Duration // local time between Sync executions
	MaxWait simtime.Duration // estimation timeout
	WayOff  simtime.Duration // own-clock rejection threshold
	// FirstSync is the local-time offset of the first execution. The
	// protocol makes no assumption about the relative phase of different
	// processors' Syncs (§3.3); scenarios stagger nodes with this.
	FirstSync simtime.Duration

	// DriftComp enables the NTP-style drift-feedback extension §5 lists as
	// future work: the node estimates its own frequency error from the
	// corrections it applies and disciplines its clock rate accordingly.
	// This goes beyond the paper's Definition 1 model (which permits only
	// additive adjustments) and is off by default; experiment E15 measures
	// what it buys.
	DriftComp bool
	// DriftCompAlpha is the EWMA weight of the frequency estimator
	// (default 0.3 when DriftComp is set).
	DriftCompAlpha float64
	// DriftCompMaxGain clamps the applied frequency discipline
	// (default 10× a typical crystal bound, 1e-3).
	DriftCompMaxGain float64

	// CachedEstimation switches the node to the §3.1 background-refresh
	// estimation variant: a cache sweeps the peers every CacheRefresh of
	// local time and Sync reads the stored values instantly. The paper
	// warns this voids Definition 4; experiment E17 shows the failure mode
	// and CacheInvalidateOnAdjust repairs it.
	CachedEstimation bool
	// CacheRefresh is the local time between cache sweeps (default
	// SyncInt/4).
	CacheRefresh simtime.Duration
	// CacheInvalidateOnAdjust drops all cached estimates after each of the
	// node's own adjustments, so a stale pre-adjustment offset can never be
	// applied twice.
	CacheInvalidateOnAdjust bool

	// SamplePeers, when positive and below the peer count, switches the node
	// to sparse estimation: each round pings a seeded random SamplePeers-of-n
	// subset instead of the full mesh, cutting a round from O(n²) to O(n·k)
	// messages at the cost of a wider accuracy envelope (E21 measures the
	// trade-off). The subset plus the self-estimate must still let the
	// convergence function trim f from both sides, so SamplePeers ≥ 2F+1 if
	// set. Zero keeps the paper's full-mesh default.
	SamplePeers int
	// SampleSeed keys the per-(node, round) subset draws; runs with the same
	// seed replay identical sampling schedules.
	SampleSeed int64
}

// Validate rejects configurations that violate §3.2.
func (c Config) Validate() error {
	if c.F < 0 {
		return fmt.Errorf("core: negative f %d", c.F)
	}
	if c.MaxWait <= 0 {
		return fmt.Errorf("core: MaxWait %v must be positive", c.MaxWait)
	}
	if c.SyncInt < 2*c.MaxWait {
		return fmt.Errorf("core: SyncInt %v < 2·MaxWait %v", c.SyncInt, c.MaxWait)
	}
	if c.WayOff <= 0 {
		return fmt.Errorf("core: WayOff %v must be positive", c.WayOff)
	}
	if c.FirstSync < 0 {
		return fmt.Errorf("core: negative FirstSync %v", c.FirstSync)
	}
	if c.SamplePeers > 0 && c.SamplePeers < 2*c.F+1 {
		return fmt.Errorf("core: SamplePeers %d < 2f+1 = %d — the trimmed extremes would be unsafe",
			c.SamplePeers, 2*c.F+1)
	}
	return nil
}

// convergeScratch holds the reusable buffers one convergence computation
// needs: the per-estimate overestimates and underestimates in their original
// order (span emission indexes into them after selection), and a selection
// buffer the quickselect is free to permute. A Node owns one scratch and
// reuses it every round; the pure Converge entry point borrows one from a
// pool. The zero value is ready to use.
type convergeScratch struct {
	overs  []float64
	unders []float64
	sel    []float64 // quickselect operand; mutated in place by kthSmallest
}

// extremes fills overs/unders from ests (original order preserved) and
// returns the (f+1)-st smallest overestimate m and the (f+1)-st largest
// underestimate M — the trimmed extremes of Figure 1, lines 6–7. Selection
// runs on the scratch's sel buffer, so overs and unders stay in estimate
// order for the caller.
func (sc *convergeScratch) extremes(f int, ests []protocol.Estimate) (m, mm float64) {
	sc.overs = sc.overs[:0]
	sc.unders = sc.unders[:0]
	for _, e := range ests {
		sc.overs = append(sc.overs, float64(e.Over()))
		sc.unders = append(sc.unders, float64(e.Under()))
	}
	sc.sel = append(sc.sel[:0], sc.overs...)
	m = kthSmallest(sc.sel, f+1)
	sc.sel = append(sc.sel[:0], sc.unders...)
	mm = kthLargest(sc.sel, f+1)
	return m, mm
}

// convergeFromExtremes applies Figure 1, lines 8–12, given the trimmed
// extremes: the adjustment, whether the WayOff "ignore own clock" branch was
// taken, and ok=false when either extreme is infinite (more than f
// estimations failed on that side, so no safe adjustment exists).
func convergeFromExtremes(m, mm float64, wayOff simtime.Duration) (delta simtime.Duration, jumped, ok bool) {
	if math.IsInf(m, 0) || math.IsInf(mm, 0) {
		return 0, false, false
	}
	w := float64(wayOff)
	if m >= -w && mm <= w {
		return simtime.Duration((math.Min(m, 0) + math.Max(mm, 0)) / 2), false, true
	}
	return simtime.Duration((m + mm) / 2), true, true
}

// scratchPool backs the pure Converge entry point so it stays allocation-free
// without changing its signature.
var scratchPool = sync.Pool{New: func() any { return new(convergeScratch) }}

// Converge is the convergence function of Figure 1, lines 6–12, as a pure
// function: given the trimming depth f, the WayOff threshold and one
// estimate per processor (self included as {D:0, A:0}), it returns the
// adjustment to apply. ok is false when the trimmed extremes are not finite
// — more than f estimations failed on both sides, so no safe adjustment
// exists and the clock is left alone (this cannot happen under the paper's
// assumptions, but message loss beyond the model can produce it).
//
// Converge never mutates ests; its working copies live in pooled scratch, so
// the steady-state call is allocation-free.
func Converge(f int, wayOff simtime.Duration, ests []protocol.Estimate) (delta simtime.Duration, ok bool) {
	delta, _, ok = ConvergeVerdict(f, wayOff, ests)
	return delta, ok
}

// ConvergeVerdict is Converge reporting additionally whether the WayOff
// "ignore own clock" branch (Figure 1, line 11) was taken — the recovery
// path a processor uses to rejoin after its clock was smashed. Live nodes
// count these jumps (clocksync_wayoff_jumps_total) so a re-joining node is
// observable.
func ConvergeVerdict(f int, wayOff simtime.Duration, ests []protocol.Estimate) (delta simtime.Duration, jumped, ok bool) {
	if len(ests) < 2*f+1 {
		return 0, false, false // trimming f from both sides needs 2f+1 values
	}
	sc := scratchPool.Get().(*convergeScratch)
	m, mm := sc.extremes(f, ests)
	scratchPool.Put(sc)
	return convergeFromExtremes(m, mm, wayOff)
}

// kthSmallest returns the k-th smallest element (1-indexed) via quickselect.
// CONTRACT: xs is scratch space owned by the caller and is permuted in place
// — callers needing the original order must select on a copy (see
// convergeScratch.sel). TestQuickselectMatchesSort pins the selection against
// a sort-based oracle on random vectors.
func kthSmallest(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	k-- // 0-indexed rank
	for lo < hi {
		p := partition(xs, lo, hi)
		switch {
		case k == p:
			return xs[p]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return xs[k]
}

func kthLargest(xs []float64, k int) float64 {
	return kthSmallest(xs, len(xs)-k+1)
}

func partition(xs []float64, lo, hi int) int {
	// Median-of-three pivot keeps adversarially sorted inputs O(n).
	mid := lo + (hi-lo)/2
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	pivot := xs[mid]
	xs[mid], xs[hi] = xs[hi], xs[mid]
	i := lo
	for j := lo; j < hi; j++ {
		if xs[j] < pivot {
			xs[i], xs[j] = xs[j], xs[i]
			i++
		}
	}
	xs[i], xs[hi] = xs[hi], xs[i]
	return i
}

// Stats counts protocol activity for the experiment harness.
type Stats struct {
	Syncs          int // completed Sync executions
	Skipped        int // executions skipped (faulty or no safe adjustment)
	WayOffTriggers int // executions that took the "ignore own clock" branch
	LastDelta      simtime.Duration
}

// Node runs Sync on one processor.
type Node struct {
	h     *protocol.Harness
	cfg   Config
	peers []int
	stats Stats

	// Drift-compensation state (only used when cfg.DriftComp is set).
	lastSyncLocal simtime.Time // hardware reading at the previous correction
	haveLast      bool
	gain          float64

	// cache is non-nil in the §3.1 cached-estimation variant.
	cache *protocol.EstimateCache

	// sampler is non-nil in the sparse-estimation mode (cfg.SamplePeers):
	// it draws each round's peer subset.
	sampler *protocol.PeerSampler

	// Round-tracing state: the open round span and its start instant. Only
	// one round is in flight per node, so plain fields suffice.
	roundSpan  obs.SpanID
	roundStart float64

	// Per-round reusable buffers: the estimate vector including the
	// self-estimate, and the convergence scratch. One round is in flight per
	// node, so plain reuse is safe and keeps the tick path allocation-free.
	all     []protocol.Estimate
	scratch convergeScratch

	// tickCB and finishCB are the tick/finish method values, bound once —
	// passing n.tick directly to ScheduleLocal would allocate a fresh
	// closure every round.
	tickCB   func()
	finishCB func([]protocol.Estimate)
}

// New builds a Sync node over the harness. peers is the list of processors
// it estimates (its topology neighbors); the node adds its own trivial
// self-estimate per Figure 1's "for each q ∈ {1,…,n}".
func New(h *protocol.Harness, cfg Config, peers []int) *Node {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Node{h: h, cfg: cfg, peers: append([]int(nil), peers...)}
	if cfg.SamplePeers > 0 && cfg.SamplePeers < len(n.peers) {
		n.sampler = protocol.NewPeerSampler(n.peers, cfg.SamplePeers, cfg.SampleSeed, h.ID())
	}
	n.tickCB = n.tick
	n.finishCB = n.finish
	return n
}

// Harness exposes the node's harness (for corruption and measurement).
func (n *Node) Harness() *protocol.Harness { return n.h }

// Stats returns a copy of the node's activity counters.
func (n *Node) Stats() Stats { return n.stats }

// Start arms the periodic Sync alarm. The alarm chain runs on the hardware
// clock and survives corruption: a break-in cannot silently kill the loop,
// matching the paper's requirement that the alarm "is recovered after a
// break-in" (§3.3).
func (n *Node) Start() {
	if n.cfg.CachedEstimation {
		refresh := n.cfg.CacheRefresh
		if refresh == 0 {
			refresh = n.cfg.SyncInt / 4
		}
		n.cache = protocol.NewEstimateCache(n.h, n.peers, refresh, n.cfg.MaxWait)
		n.cache.Start()
		// The cache's contents were writable by the adversary; they are
		// worthless after release (§3.1: the thread must be policed).
		n.h.OnRelease = func(simtime.Time) { n.cache.Invalidate() }
	}
	n.h.ScheduleLocal(n.cfg.FirstSync, n.tickCB)
}

// Cache exposes the estimate cache in the cached-estimation variant (nil
// otherwise); experiments use it to measure staleness.
func (n *Node) Cache() *protocol.EstimateCache { return n.cache }

// tick is one firing of the SyncInt alarm.
func (n *Node) tick() {
	// Re-arm first: the next execution is SyncInt after this one started,
	// regardless of what happens below.
	n.h.ScheduleLocal(n.cfg.SyncInt, n.tickCB)
	if n.h.Faulty() {
		// The adversary owns this processor; its correct logic is suspended.
		// The alarm chain itself keeps running.
		n.stats.Skipped++
		if rec := n.h.Obs.Recorder(); rec != nil {
			rec.RoundsSkipped.Inc()
		}
		return
	}
	if n.h.Obs.SpansEnabled() {
		n.roundSpan = n.h.Obs.NextSpanID()
		n.roundStart = float64(n.h.Sim().Now())
		n.h.SpanParent = n.roundSpan
	}
	if n.cache != nil {
		n.finish(n.cache.GetAll())
		return
	}
	peers := n.peers
	if n.sampler != nil {
		peers = n.sampler.Sample()
	}
	n.h.EstimateAll(peers, n.cfg.MaxWait, n.finishCB)
}

// finish applies the convergence function to a completed estimation round.
// The trimmed extremes are computed exactly once per round, into the node's
// reusable scratch, and shared between the adjustment, the WayOff decision
// and the reading spans — the old path recomputed the order statistics up to
// three times and allocated fresh vectors for each.
func (n *Node) finish(ests []protocol.Estimate) {
	// Figure 1 iterates over all of {1..n} including p itself; the
	// self-estimate is exact and free.
	n.all = append(n.all[:0], ests...)
	n.all = append(n.all, protocol.Estimate{Peer: n.h.ID(), D: 0, A: 0, OK: true})
	all := n.all

	var m, mm float64
	var delta simtime.Duration
	var jumped, ok bool
	if len(all) >= 2*n.cfg.F+1 {
		m, mm = n.scratch.extremes(n.cfg.F, all)
		delta, jumped, ok = convergeFromExtremes(m, mm, n.cfg.WayOff)
	}
	if !ok {
		n.stats.Skipped++
		if rec := n.h.Obs.Recorder(); rec != nil {
			rec.RoundsSkipped.Inc()
			n.h.Obs.Emit(obs.Event{
				At: float64(n.h.Sim().Now()), Kind: obs.KindSkip, Node: n.h.ID(),
			})
		}
		if n.roundSpan != 0 {
			now := float64(n.h.Sim().Now())
			n.h.Obs.EmitSpan(obs.Span{
				ID: n.roundSpan, Name: obs.SpanRound, Node: n.h.ID(),
				Start: n.roundStart, End: now,
				Fields: obs.F("skip", 1),
			})
			n.roundSpan = 0
			n.h.SpanParent = 0
		}
		return
	}
	if jumped {
		n.stats.WayOffTriggers++
	}
	n.stats.Syncs++
	n.stats.LastDelta = delta
	n.h.Adjust(delta)
	wj := 0.0
	if jumped {
		wj = 1
	}
	if rec := n.h.Obs.Recorder(); rec != nil {
		rec.SyncRounds.Inc()
		rec.LastAdjust.Set(float64(delta))
		rec.AdjustMag.Observe(math.Abs(float64(delta)))
		// Adjustments are applied instantaneously (Definition 1 permits only
		// additive corrections), so the amortization gauge pins at 1.
		rec.AmortizationProgress.Set(1)
		if jumped {
			rec.WayOffJumps.Inc()
		}
		failed := 0
		for _, e := range all {
			if !e.OK {
				failed++
			}
		}
		n.h.Obs.Emit(obs.Event{
			At: float64(n.h.Sim().Now()), Kind: obs.KindRound, Node: n.h.ID(),
			Fields: map[string]float64{
				"delta":  float64(delta),
				"failed": float64(failed),
				"wayoff": wj,
			},
		})
	}
	if n.roundSpan != 0 {
		n.emitRoundSpans(all, m, mm, delta, wj)
	}
	if n.cache != nil && n.cfg.CacheInvalidateOnAdjust && delta != 0 {
		n.cache.Invalidate()
	}
	if n.cfg.DriftComp {
		if jumped {
			// A recovery jump says nothing about our rate; restart the
			// estimator's baseline.
			n.haveLast = false
		} else {
			n.updateDrift(delta)
		}
	}
}

// emitRoundSpans closes the open round span: one zero-duration reading span
// per estimate recording the convergence function's verdict (accepted, or
// trimmed away by the (f+1)-st order statistics), an adjustment span, and the
// round span itself. Reading spans parent to the estimation span that
// produced their value, so a bad adjustment traces back through its reading
// to the exact message exchange (or timeout) that fed it.
//
// m and mm are the trimmed extremes finish already computed; the per-estimate
// overs/unders are read from the node's scratch, which extremes left in
// estimate order — nothing is recomputed or reallocated here.
func (n *Node) emitRoundSpans(all []protocol.Estimate, m, mm float64, delta simtime.Duration, wayoff float64) {
	now := float64(n.h.Sim().Now())
	overs, unders := n.scratch.overs, n.scratch.unders
	for i, e := range all {
		lowTrim, highTrim := 0.0, 0.0
		if overs[i] < m {
			lowTrim = 1 // overestimate among the f smallest: trimmed
		}
		if unders[i] > mm {
			highTrim = 1 // underestimate among the f largest: trimmed
		}
		fields := obs.F("peer", float64(e.Peer)).
			F("accepted", 1-math.Max(lowTrim, highTrim)).
			F("lowtrim", lowTrim).
			F("hightrim", highTrim)
		// Failed estimates carry infinite over/under; JSON cannot encode
		// those, so only finite readings are recorded.
		if !math.IsInf(overs[i], 0) {
			fields = fields.F("over", overs[i])
		}
		if !math.IsInf(unders[i], 0) {
			fields = fields.F("under", unders[i])
		}
		parent := e.Span
		if parent == 0 {
			parent = n.roundSpan // self-estimate has no estimation span
		}
		n.h.Obs.EmitSpan(obs.Span{
			ID: n.h.Obs.NextSpanID(), Parent: parent, Name: obs.SpanReading,
			Node: n.h.ID(), Start: now, End: now, Fields: fields,
		})
	}
	n.h.Obs.EmitSpan(obs.Span{
		ID: n.h.Obs.NextSpanID(), Parent: n.roundSpan, Name: obs.SpanAdjust,
		Node: n.h.ID(), Start: now, End: now,
		Fields: obs.F("delta", float64(delta)).F("wayoff", wayoff),
	})
	n.h.Obs.EmitSpan(obs.Span{
		ID: n.roundSpan, Name: obs.SpanRound, Node: n.h.ID(),
		Start: n.roundStart, End: now,
		Fields: obs.F("delta", float64(delta)).F("wayoff", wayoff),
	})
	n.roundSpan = 0
	n.h.SpanParent = 0
}

// updateDrift feeds one correction into the frequency estimator: a clock
// that keeps needing negative corrections is running fast relative to the
// ensemble, so its rate gain is lowered (and vice versa). The estimate is an
// EWMA of delta/elapsed, clamped, and applied as a clock discipline.
func (n *Node) updateDrift(delta simtime.Duration) {
	now := n.h.Sim().Now()
	hwNow := n.h.Clock().Hardware().Read(now)
	if !n.haveLast {
		n.lastSyncLocal = hwNow
		n.haveLast = true
		return
	}
	elapsed := float64(hwNow.Sub(n.lastSyncLocal))
	n.lastSyncLocal = hwNow
	if elapsed <= 0 {
		return
	}
	alpha := n.cfg.DriftCompAlpha
	if alpha == 0 {
		alpha = 0.3
	}
	maxGain := n.cfg.DriftCompMaxGain
	if maxGain == 0 {
		maxGain = 1e-3
	}
	// delta ≈ −(rate error)·elapsed, so the gain moves toward cancelling it.
	n.gain = (1-alpha)*n.gain + alpha*(n.gain+float64(delta)/elapsed)
	n.gain = math.Max(-maxGain, math.Min(maxGain, n.gain))
	n.h.Clock().SetGain(now, n.gain)
}

// wayOff reports whether the estimates trip the "ignore own clock" branch.
// The protocol path gets this for free from convergeFromExtremes; this
// wrapper exists for tests that probe the branch in isolation.
func wayOff(f int, w simtime.Duration, ests []protocol.Estimate) bool {
	sc := scratchPool.Get().(*convergeScratch)
	m, mm := sc.extremes(f, ests)
	scratchPool.Put(sc)
	_, jumped, _ := convergeFromExtremes(m, mm, w)
	return jumped
}
