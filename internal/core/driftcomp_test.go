package core

import (
	"math"
	"testing"

	"clocksync/internal/clock"
	"clocksync/internal/des"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/simtime"
)

// driftCluster builds a cluster with strong drift and long sync intervals —
// the regime where the drift term 18ρT dominates the deviation budget and
// frequency feedback has something to cancel.
func driftCluster(t *testing.T, driftComp bool) *testCluster {
	t.Helper()
	cfg := Config{
		F:         1,
		SyncInt:   60 * simtime.Second,
		MaxWait:   20 * simtime.Millisecond,
		WayOff:    5 * simtime.Second,
		DriftComp: driftComp,
	}
	sim := des.New(42)
	net := network.New(sim, network.NewFullMesh(4),
		network.NewUniformDelay(simtime.Millisecond, 5*simtime.Millisecond))
	tc := &testCluster{sim: sim, net: net}
	slopes := []float64{1 + 1e-3, 1 - 1e-3, 1 + 5e-4, 1 - 5e-4}
	for i := 0; i < 4; i++ {
		h := protocol.NewHarness(i, sim, net, clock.NewLocal(clock.NewDrifting(0, 0, slopes[i])))
		nodeCfg := cfg
		nodeCfg.FirstSync = simtime.Duration(i) * cfg.SyncInt / 4
		node := New(h, nodeCfg, net.Topology().Neighbors(i))
		tc.nodes = append(tc.nodes, node)
		node.Start()
	}
	return tc
}

func worstSpread(tc *testCluster, from, to, step simtime.Time) float64 {
	worst := 0.0
	for at := from; at <= to; at += step {
		tc.sim.RunUntil(at)
		if s := spread(tc.biases(at)); s > worst {
			worst = s
		}
	}
	return worst
}

func TestDriftCompensationReducesDeviation(t *testing.T) {
	// ρ=1e-3 with 60 s sync intervals: clocks diverge by up to ~0.12 s
	// between corrections without compensation. With the frequency feedback
	// the residual rate error shrinks and so does the steady-state spread.
	plain := driftCluster(t, false)
	comp := driftCluster(t, true)
	// Warm-up: let the estimator converge over ~20 syncs.
	plain.sim.RunUntil(1500)
	comp.sim.RunUntil(1500)
	plainWorst := worstSpread(plain, 1500, 7200, 30)
	compWorst := worstSpread(comp, 1500, 7200, 30)
	if compWorst >= plainWorst*0.7 {
		t.Fatalf("drift compensation ineffective: %v (comp) vs %v (plain)", compWorst, plainWorst)
	}
}

func TestDriftCompensationLearnsTheRate(t *testing.T) {
	comp := driftCluster(t, true)
	comp.sim.RunUntil(7200)
	// The fastest clock (slope 1+1e-3) should have learned a negative gain
	// close to cancelling its drift relative to the ensemble.
	g := comp.nodes[0].Harness().Clock().Gain()
	if g >= 0 {
		t.Fatalf("fast clock learned non-negative gain %v", g)
	}
	if math.Abs(g) > 1.5e-3 {
		t.Fatalf("gain %v exceeds plausible drift magnitude", g)
	}
}

func TestDriftCompensationSurvivesWayOffJump(t *testing.T) {
	// A smash + recovery must not poison the frequency estimator: the jump
	// resets the baseline instead of feeding a bogus rate sample.
	comp := driftCluster(t, true)
	comp.sim.RunUntil(1800)
	victim := comp.nodes[2]
	comp.sim.At(1801, func() { victim.Harness().Corrupt(smashBehavior{offset: 500}) })
	comp.sim.At(1830, func() { victim.Harness().Release() })
	comp.sim.RunUntil(7200)
	g := victim.Harness().Clock().Gain()
	if math.Abs(g) > 1.5e-3 {
		t.Fatalf("estimator poisoned by recovery jump: gain=%v", g)
	}
	// And the cluster still holds together.
	if s := spread(comp.biases(7200)); s > 0.1 {
		t.Fatalf("cluster spread after recovery: %v", s)
	}
}

func TestDriftCompDisabledLeavesGainZero(t *testing.T) {
	plain := driftCluster(t, false)
	plain.sim.RunUntil(3600)
	for i, n := range plain.nodes {
		if g := n.Harness().Clock().Gain(); g != 0 {
			t.Fatalf("node %d has gain %v with DriftComp off", i, g)
		}
	}
}
