package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestQuickselectMatchesSort pins kthSmallest/kthLargest against a sort-based
// oracle on random vectors: every rank of every vector must match the sorted
// order, including vectors with duplicates, adversarial orderings and ±Inf
// sentinels (the convergence function feeds infinities for missing readings).
func TestQuickselectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gens := []struct {
		name string
		gen  func(n int) []float64
	}{
		{"uniform", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.NormFloat64()
			}
			return xs
		}},
		{"duplicates", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(rng.Intn(3))
			}
			return xs
		}},
		{"sorted", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(i)
			}
			return xs
		}},
		{"reversed", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(n - i)
			}
			return xs
		}},
		{"infinities", func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				switch rng.Intn(4) {
				case 0:
					xs[i] = math.Inf(1)
				case 1:
					xs[i] = math.Inf(-1)
				default:
					xs[i] = rng.NormFloat64()
				}
			}
			return xs
		}},
	}
	for _, g := range gens {
		t.Run(g.name, func(t *testing.T) {
			for trial := 0; trial < 50; trial++ {
				n := 1 + rng.Intn(40)
				xs := g.gen(n)
				sorted := append([]float64(nil), xs...)
				sort.Float64s(sorted)
				for k := 1; k <= n; k++ {
					small := append([]float64(nil), xs...)
					if got, want := kthSmallest(small, k), sorted[k-1]; got != want {
						t.Fatalf("kthSmallest(%v, %d) = %v, want %v", xs, k, got, want)
					}
					large := append([]float64(nil), xs...)
					if got, want := kthLargest(large, k), sorted[n-k]; got != want {
						t.Fatalf("kthLargest(%v, %d) = %v, want %v", xs, k, got, want)
					}
				}
			}
		})
	}
}

// TestQuickselectPermutesInPlace documents the scratch-buffer contract: the
// input is permuted, not reallocated — same multiset, same backing array.
func TestQuickselectPermutesInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 25)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	orig := append([]float64(nil), xs...)
	kthSmallest(xs, 9)

	sort.Float64s(orig)
	perm := append([]float64(nil), xs...)
	sort.Float64s(perm)
	for i := range orig {
		if orig[i] != perm[i] {
			t.Fatalf("selection changed the multiset at sorted index %d: %v vs %v", i, orig[i], perm[i])
		}
	}
}
