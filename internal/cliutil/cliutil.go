// Package cliutil holds the flag helpers shared by this repository's
// commands, so syncnode, syncsim, synccampaign and syncload expose the same
// address and peer-list syntax with identical validation and error wording.
package cliutil

import (
	"flag"
	"fmt"
	"net"
	"strconv"
	"strings"
)

// addrValue is a flag.Value for optional listen addresses: the empty string
// means "disabled", anything else must be host:port with a numeric port.
// Validation happens at parse time, so a typo fails at the flag with the
// flag's name attached instead of surfacing later as a listener error.
type addrValue struct{ p *string }

func (v addrValue) String() string {
	if v.p == nil {
		return ""
	}
	return *v.p
}

func (v addrValue) Set(s string) error {
	if err := CheckAddr(s); err != nil {
		return err
	}
	*v.p = s
	return nil
}

// AddrVar registers an optional host:port flag on fs and returns the bound
// string: empty (disabled) until the user passes a valid address. Use it for
// every -metrics-addr / -serve-addr / -status style flag so all commands
// validate addresses identically.
func AddrVar(fs *flag.FlagSet, name, def, usage string) *string {
	p := new(string)
	*p = def
	fs.Var(addrValue{p}, name, usage)
	return p
}

// CheckAddr validates an optional listen address: empty means disabled;
// anything else must be host:port with a numeric port (the host part may be
// empty, meaning all interfaces; port 0 asks the OS for a free port).
func CheckAddr(addr string) error {
	if addr == "" {
		return nil
	}
	_, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("address %q: want host:port", addr)
	}
	if _, err := strconv.Atoi(port); err != nil {
		return fmt.Errorf("address %q: port %q is not a number", addr, port)
	}
	return nil
}

// ParsePeers parses a "1=host:port,2=host:port" list into a peer table.
// Entries for self are dropped, so every node of a cluster can be handed the
// same list. An empty list is an error: a peer flag left unset is the most
// common deployment mistake, and a node that silently runs alone hides it.
func ParsePeers(arg string, self int) (map[int]string, error) {
	if strings.TrimSpace(arg) == "" {
		return nil, fmt.Errorf("empty peer list (want id=host:port,...)")
	}
	peers := make(map[int]string)
	for _, part := range strings.Split(arg, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q (want id=host:port)", part)
		}
		pid, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %w", kv[0], err)
		}
		if pid == self {
			continue // ignore self-entries so all nodes can share one list
		}
		if _, dup := peers[pid]; dup {
			return nil, fmt.Errorf("duplicate peer id %d", pid)
		}
		peers[pid] = kv[1]
	}
	return peers, nil
}
