package cliutil

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func TestAddrVar(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // accepted value, or
		err  string // substring of the parse error
	}{
		{"unset stays default", nil, "", ""},
		{"host and port", []string{"-addr", "127.0.0.1:9000"}, "127.0.0.1:9000", ""},
		{"port only", []string{"-addr", ":8080"}, ":8080", ""},
		{"os-assigned port", []string{"-addr", "localhost:0"}, "localhost:0", ""},
		{"ipv6", []string{"-addr", "[::1]:9000"}, "[::1]:9000", ""},
		{"explicit empty disables", []string{"-addr", ""}, "", ""},
		{"missing port", []string{"-addr", "127.0.0.1"}, "", "want host:port"},
		{"named port", []string{"-addr", "localhost:http"}, "", "not a number"},
		{"bare word", []string{"-addr", "nonsense"}, "", "want host:port"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			got := AddrVar(fs, "addr", "", "test address")
			err := fs.Parse(tc.args)
			if tc.err != "" {
				if err == nil || !strings.Contains(err.Error(), tc.err) {
					t.Fatalf("Parse(%q) err = %v, want substring %q", tc.args, err, tc.err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.args, err)
			}
			if *got != tc.want {
				t.Fatalf("value = %q, want %q", *got, tc.want)
			}
		})
	}
}

func TestAddrVarDefaultSurvives(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	got := AddrVar(fs, "addr", "127.0.0.1:9000", "test address")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *got != "127.0.0.1:9000" {
		t.Fatalf("default = %q, want 127.0.0.1:9000", *got)
	}
}

func TestCheckAddr(t *testing.T) {
	if err := CheckAddr(""); err != nil {
		t.Errorf("empty address must be allowed (disabled): %v", err)
	}
	if err := CheckAddr("10.1.2.3:123"); err != nil {
		t.Errorf("valid address rejected: %v", err)
	}
	if err := CheckAddr("10.1.2.3"); err == nil {
		t.Error("portless address accepted")
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("0=127.0.0.1:9000,1=127.0.0.1:9001, 2=host:9002", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, hasSelf := peers[0]; hasSelf {
		t.Fatal("self entry not ignored")
	}
	if peers[1] != "127.0.0.1:9001" || peers[2] != "host:9002" {
		t.Fatalf("peers: %+v", peers)
	}
}

func TestParsePeersErrors(t *testing.T) {
	cases := []struct {
		arg  string
		want string
	}{
		{"", "empty peer list"},
		{"   ", "empty peer list"},
		{"1:127.0.0.1:9001", "bad peer entry"},
		{"x=127.0.0.1:9001", "bad peer id"},
		{"1=a,1=b", "duplicate peer id"},
	}
	for _, tc := range cases {
		if _, err := ParsePeers(tc.arg, 0); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParsePeers(%q): got %v, want %q", tc.arg, err, tc.want)
		}
	}
}
