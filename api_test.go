package clocksync_test

import (
	"bytes"
	"strings"
	"testing"

	"clocksync"
)

func smallScenario() clocksync.Scenario {
	return clocksync.Scenario{
		Name:       "api",
		Seed:       7,
		N:          4,
		F:          1,
		Duration:   5 * clocksync.Minute,
		Theta:      2 * clocksync.Minute,
		Rho:        1e-4,
		InitSpread: 200 * clocksync.Millisecond,
	}
}

// TestRunScenarioOptions exercises the functional-option surface: observers
// and sinks attach per call, and the caller's Scenario value is not
// mutated.
func TestRunScenarioOptions(t *testing.T) {
	s := smallScenario()
	ring := clocksync.NewRing(1024)
	var jsonl bytes.Buffer
	res, err := clocksync.RunScenario(s,
		clocksync.WithObserver(clocksync.NewObserver(ring)),
		clocksync.WithEventSink(clocksync.NewJSONLSink(&jsonl)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Observer != nil || s.EventSink != nil {
		t.Error("RunScenario options mutated the caller's Scenario")
	}
	if res.EventCounts[clocksync.EventRound] == 0 {
		t.Errorf("no round events tallied: %v", res.EventCounts)
	}
	sawRound := false
	for _, e := range ring.Events() {
		if e.Kind == clocksync.EventRound {
			sawRound = true
			break
		}
	}
	if !sawRound {
		t.Error("observer ring captured no round events")
	}
	if !strings.Contains(jsonl.String(), `"kind":"round"`) {
		t.Error("JSONL sink received no round events")
	}
}

// TestRunScenarioScaleOptions exercises the scaling surface: WithShards runs
// the scenario on the sharded event queue and WithPeerSampling switches to
// sparse estimation, without mutating the caller's Scenario — and the
// sharded run's report matches the serial reference exactly (the shard-count
// determinism contract, exposed through the public API).
func TestRunScenarioScaleOptions(t *testing.T) {
	s := smallScenario()
	s.N, s.F = 16, 2

	serial, err := clocksync.RunScenario(s, clocksync.WithPeerSampling(7))
	if err != nil {
		t.Fatal(err)
	}
	if s.SamplePeers != 0 || s.Shards != 0 {
		t.Error("RunScenario options mutated the caller's Scenario")
	}

	full, err := clocksync.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if serial.MsgsSent >= full.MsgsSent {
		t.Errorf("sampling did not cut traffic: %d sampled vs %d full msgs",
			serial.MsgsSent, full.MsgsSent)
	}

	// An unsafe subset size must surface as an error, not a panic: with
	// k < 2f+1 the convergence function could not trim f faulty readings
	// from both sides.
	if _, err := clocksync.RunScenario(s, clocksync.WithPeerSampling(3)); err == nil {
		t.Error("RunScenario accepted SamplePeers 3 < 2f+1 = 5")
	}

	// WithShards(1) is the sharded engine's serial reference; any shard
	// count must produce identical observables.
	ref, err := clocksync.RunScenario(s, clocksync.WithPeerSampling(7), clocksync.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := clocksync.RunScenario(s, clocksync.WithPeerSampling(7), clocksync.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Report.MaxDeviation != sharded.Report.MaxDeviation || ref.MsgsSent != sharded.MsgsSent {
		t.Errorf("shard counts disagree: dev %v/%v, msgs %d/%d",
			ref.Report.MaxDeviation, sharded.Report.MaxDeviation, ref.MsgsSent, sharded.MsgsSent)
	}
}

// TestRunScenarioWithSpanSink exercises the causal-tracing surface: a run
// with a span sink produces a round span tree whose estimate and adjust
// spans parent back to round spans, and quantiles come out of the shared
// histogram layout.
func TestRunScenarioWithSpanSink(t *testing.T) {
	s := smallScenario()
	ring := clocksync.NewSpanRing(10_000)
	res, err := clocksync.RunScenario(s, clocksync.WithSpanSink(ring))
	if err != nil {
		t.Fatal(err)
	}
	if s.SpanSink != nil {
		t.Error("WithSpanSink mutated the caller's Scenario")
	}
	rounds := map[clocksync.SpanID]bool{}
	byName := map[string]int{}
	for _, sp := range ring.Spans() {
		byName[sp.Name]++
		if sp.Name == clocksync.SpanRound {
			rounds[sp.ID] = true
		}
	}
	for _, name := range []string{
		clocksync.SpanRound, clocksync.SpanEstimate,
		clocksync.SpanReading, clocksync.SpanAdjust,
	} {
		if byName[name] == 0 {
			t.Errorf("no %q spans captured: %v", name, byName)
		}
	}
	for _, sp := range ring.Spans() {
		if (sp.Name == clocksync.SpanEstimate || sp.Name == clocksync.SpanAdjust) && !rounds[sp.Parent] {
			t.Fatalf("%s span %d has parent %d which is not a round span", sp.Name, sp.ID, sp.Parent)
		}
	}
	if res.Obs == nil {
		t.Fatal("no observer created for SpanSink")
	}
	if res.Obs.Recorder().RTT.Count() == 0 {
		t.Error("RTT histogram empty after traced run")
	}
	if b := clocksync.HistogramBounds(); len(b) == 0 {
		t.Error("HistogramBounds empty")
	}
}

// TestRunScenarioWithTrace checks the measurement trace option produces
// JSON lines.
func TestRunScenarioWithTrace(t *testing.T) {
	var buf bytes.Buffer
	if _, err := clocksync.RunScenario(smallScenario(), clocksync.WithTrace(&buf)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("WithTrace produced no output")
	}
}

// TestSweepExported checks the package-level Sweep and WorstDeviation.
func TestSweepExported(t *testing.T) {
	mk := func(int64) clocksync.Scenario {
		s := smallScenario()
		s.Duration = 2 * clocksync.Minute
		return s
	}
	results, err := clocksync.Sweep(mk, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if worst := clocksync.WorstDeviation(results); worst == nil {
		t.Fatal("WorstDeviation returned nil for a successful sweep")
	}
}

// TestRunScenarioWithCheck checks the invariant-checker option: an honest
// small run must report zero violations, and Violations must be non-nil so
// callers can distinguish "checked and clean" from "not checked".
func TestRunScenarioWithCheck(t *testing.T) {
	s := smallScenario()
	res, err := clocksync.RunScenario(s, clocksync.WithCheck())
	if err != nil {
		t.Fatal(err)
	}
	if s.Check {
		t.Error("WithCheck mutated the caller's Scenario")
	}
	for _, v := range res.Violations {
		t.Errorf("honest run violated %s: %s", v.Invariant, v)
	}
}

// TestRunCampaignExported checks the campaign surface end to end: a small
// honest campaign completes clean, and the exported invariant names match
// what violations would carry.
func TestRunCampaignExported(t *testing.T) {
	res, err := clocksync.RunCampaign(clocksync.CampaignConfig{
		Runs: 4, Seed: 1, Duration: 10 * clocksync.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4 {
		t.Fatalf("completed %d of 4 runs", res.Completed)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("honest campaign failed: %+v", res.Failures[0].Violations)
	}
	for _, name := range []string{
		clocksync.InvariantDeviation, clocksync.InvariantStep,
		clocksync.InvariantAccuracy, clocksync.InvariantRecovery,
	} {
		if name == "" {
			t.Error("empty invariant name in the public API")
		}
	}
}
