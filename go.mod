module clocksync

go 1.22
