package clocksync_test

import (
	"testing"
	"time"

	"clocksync"
)

// The deprecated names must stay exact aliases of the canonical API — a
// drifted alias would silently fork the two surfaces. Compile-time identity
// checks cost nothing and pin that.
var (
	_ clocksync.NodeConfig                                              = clocksync.LiveConfig{}
	_ *clocksync.Node                                                   = (*clocksync.LiveNode)(nil)
	_ clocksync.ClusterConfig                                           = clocksync.LiveClusterConfig{}
	_ *clocksync.Cluster                                                = (*clocksync.LiveCluster)(nil)
	_ func(clocksync.LiveConfig) (*clocksync.LiveNode, error)           = clocksync.NewLiveNode
	_ func(clocksync.LiveClusterConfig) (*clocksync.LiveCluster, error) = clocksync.NewLiveCluster
	_ func(*clocksync.Node) time.Time                                   = clocksync.NodeNow
)

// TestNodeNowDelegatesToRead pins the documented contract of the deprecated
// bare-timestamp accessors: NodeNow and Node.Now return the same instant
// Reading.Time carries, just stripped of its uncertainty — so the deprecated
// value must sit inside the interval a Read taken around it brackets.
func TestNodeNowDelegatesToRead(t *testing.T) {
	cluster, err := clocksync.NewLiveCluster(clocksync.LiveClusterConfig{
		N:       4,
		F:       1,
		SyncInt: 50 * time.Millisecond,
		MaxWait: 25 * time.Millisecond,
		WayOff:  5 * time.Second,
		Offsets: []time.Duration{-2 * time.Millisecond, 0, 3 * time.Millisecond, time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()
	if err := cluster.WaitConverged(5*time.Millisecond, 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	for i, node := range cluster.Nodes() {
		before := node.Read()
		if before.Epoch == 0 {
			t.Fatalf("node %d converged but its reading has epoch 0", i)
		}
		start := time.Now()
		bare := clocksync.NodeNow(node)
		method := node.Now()
		after := node.Read()
		elapsed := time.Since(start)

		// Both deprecated accessors interpolate the same discipline state the
		// Reading carries; they may diverge from Reading.Time only by the
		// reading's uncertainty plus the wall time between the calls.
		slack := before.Uncertainty + after.Uncertainty + elapsed + time.Millisecond
		for _, got := range []time.Time{bare, method} {
			if d := got.Sub(before.Time); d < -slack || d > slack+elapsed {
				t.Errorf("node %d: deprecated timestamp %v is %v from Reading.Time %v (allowed %v)",
					i, got, d, before.Time, slack)
			}
		}
		// The bracket must be ordered: a Read taken before never reads ahead
		// of one taken after.
		if after.Time.Before(before.Time) {
			t.Errorf("node %d: Read went backwards: %v then %v", i, before.Time, after.Time)
		}
	}
}
