package clocksync_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"clocksync"
)

// ExampleDerive evaluates Theorem 5 for a LAN-like deployment.
func ExampleDerive() {
	params := clocksync.DefaultParams(7, 2) // n=7 processors, f=2 per period
	bounds, err := clocksync.Derive(params)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("analysis interval T  %v\n", bounds.T)
	fmt.Printf("syncs per period K   %d\n", bounds.K)
	fmt.Printf("max deviation Δ      %v\n", bounds.MaxDeviation)
	// Output:
	// analysis interval T  10.201s
	// syncs per period K   176
	// max deviation Δ      818.44ms
}

// ExampleRunScenario simulates a cluster under a mobile clock-smashing
// adversary and checks the Theorem 5 deviation guarantee.
func ExampleRunScenario() {
	theta := 3 * clocksync.Minute
	res, err := clocksync.RunScenario(clocksync.Scenario{
		Name:     "example",
		Seed:     1,
		N:        7,
		F:        2,
		Duration: 30 * clocksync.Minute,
		Theta:    theta,
		Rho:      1e-4,
		Adversary: clocksync.RotateAdversary(7, 2, clocksync.Time(2*theta),
			30*clocksync.Second, theta, 4,
			func(int) clocksync.Behavior {
				return clocksync.ClockSmash{Offset: 30 * clocksync.Second}
			}),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("within bound: %v\n", res.Report.MaxDeviation <= res.Bounds.MaxDeviation)
	recovered := 0
	for _, rv := range res.Report.Recoveries {
		if rv.Ok {
			recovered++
		}
	}
	fmt.Printf("recoveries: %d/%d\n", recovered, len(res.Report.Recoveries))
	// Output:
	// within bound: true
	// recoveries: 4/4
}

// ExampleScenario_twoClique reproduces the §5 counterexample in a few lines:
// a (3f+1)-connected graph on which the protocol cannot keep the two halves
// together.
func ExampleScenario_twoClique() {
	res, err := clocksync.RunScenario(clocksync.Scenario{
		Name:     "two-clique",
		Seed:     1,
		N:        8,
		F:        1,
		Duration: clocksync.Hour,
		Theta:    5 * clocksync.Minute,
		Rho:      1e-3,
		Topology: clocksync.NewTwoCliques(1),
		Slopes:   []float64{1.001, 1.001, 1.001, 1.001, 0.999, 0.999, 0.999, 0.999},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	// The good-set deviation includes the inter-clique gap, which grows with
	// relative drift instead of staying under the full-mesh bound.
	fmt.Printf("diverged: %v\n", res.Report.MaxDeviation > res.Bounds.MaxDeviation)
	// Output:
	// diverged: true
}

// ExampleNode_Read stands up a node with a dedicated time-serving endpoint
// and reads its disciplined clock as an interval-valued Reading. The example
// has no Output line because live-network timing is nondeterministic; it is
// compiled, not run.
func ExampleNode_Read() {
	node, err := clocksync.NewNode(clocksync.NodeConfig{
		ID:      0,
		Listen:  "127.0.0.1:0",
		SyncInt: 2 * time.Second,
		MaxWait: 500 * time.Millisecond,
		WayOff:  5 * time.Second,
	}, clocksync.WithServeAddr("127.0.0.1:0"))
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go node.Run(ctx)

	// Read is wait-free and allocation-free: call it from any goroutine at
	// any rate. The true cluster time is inside [Time−Uncertainty,
	// Time+Uncertainty]; Epoch says how many Sync rounds back it.
	r := node.Read()
	fmt.Printf("now=%v ±%v (epoch %d)\n", r.Time, r.Uncertainty, r.Epoch)
	fmt.Printf("query me at %s\n", node.ServeAddr())
}

// ExampleNewTimeClient queries a node's UDP time service with the
// four-timestamp exchange and then reads interpolated time locally. It is
// compiled, not run (live-network timing is nondeterministic).
func ExampleNewTimeClient() {
	client, err := clocksync.NewTimeClient(clocksync.ClientConfig{
		Server:  "10.0.0.7:9123", // a node's Serve.Addr
		Timeout: time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Query performs one network exchange; the reported uncertainty includes
	// the server's own envelope plus the round-trip asymmetry bound.
	r, err := client.Query(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server says %v ±%v\n", r.Time, r.Uncertainty)

	// Between queries, Read interpolates from the last exchange without
	// touching the network; uncertainty grows at the local drift bound.
	var src clocksync.TimeSource = client
	fmt.Println(src.Read().Time)
}
