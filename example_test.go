package clocksync_test

import (
	"fmt"

	"clocksync"
)

// ExampleDerive evaluates Theorem 5 for a LAN-like deployment.
func ExampleDerive() {
	params := clocksync.DefaultParams(7, 2) // n=7 processors, f=2 per period
	bounds, err := clocksync.Derive(params)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("analysis interval T  %v\n", bounds.T)
	fmt.Printf("syncs per period K   %d\n", bounds.K)
	fmt.Printf("max deviation Δ      %v\n", bounds.MaxDeviation)
	// Output:
	// analysis interval T  10.201s
	// syncs per period K   176
	// max deviation Δ      818.44ms
}

// ExampleRunScenario simulates a cluster under a mobile clock-smashing
// adversary and checks the Theorem 5 deviation guarantee.
func ExampleRunScenario() {
	theta := 3 * clocksync.Minute
	res, err := clocksync.RunScenario(clocksync.Scenario{
		Name:     "example",
		Seed:     1,
		N:        7,
		F:        2,
		Duration: 30 * clocksync.Minute,
		Theta:    theta,
		Rho:      1e-4,
		Adversary: clocksync.RotateAdversary(7, 2, clocksync.Time(2*theta),
			30*clocksync.Second, theta, 4,
			func(int) clocksync.Behavior {
				return clocksync.ClockSmash{Offset: 30 * clocksync.Second}
			}),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("within bound: %v\n", res.Report.MaxDeviation <= res.Bounds.MaxDeviation)
	recovered := 0
	for _, rv := range res.Report.Recoveries {
		if rv.Ok {
			recovered++
		}
	}
	fmt.Printf("recoveries: %d/%d\n", recovered, len(res.Report.Recoveries))
	// Output:
	// within bound: true
	// recoveries: 4/4
}

// ExampleScenario_twoClique reproduces the §5 counterexample in a few lines:
// a (3f+1)-connected graph on which the protocol cannot keep the two halves
// together.
func ExampleScenario_twoClique() {
	res, err := clocksync.RunScenario(clocksync.Scenario{
		Name:     "two-clique",
		Seed:     1,
		N:        8,
		F:        1,
		Duration: clocksync.Hour,
		Theta:    5 * clocksync.Minute,
		Rho:      1e-3,
		Topology: clocksync.NewTwoCliques(1),
		Slopes:   []float64{1.001, 1.001, 1.001, 1.001, 0.999, 0.999, 0.999, 0.999},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	// The good-set deviation includes the inter-clique gap, which grows with
	// relative drift instead of staying under the full-mesh bound.
	fmt.Printf("diverged: %v\n", res.Report.MaxDeviation > res.Bounds.MaxDeviation)
	// Output:
	// diverged: true
}
