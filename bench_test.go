package clocksync_test

import (
	"fmt"
	"testing"

	"clocksync/internal/experiments"
	"clocksync/internal/simbench"
)

// Experiment benchmarks — one per table/figure of EXPERIMENTS.md. Each
// regenerates the experiment (quick mode) and fails the benchmark if the
// measured results lose the shape the paper predicts. Run
// `go run ./cmd/benchtables` for full-length tables with the printed output.

func benchExperiment(b *testing.B, run func(bool) experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		table := run(true)
		if !table.ChecksPass() {
			b.Fatalf("%s failed its shape checks:\n%s", table.ID, table.String())
		}
	}
}

func BenchmarkE01Deviation(b *testing.B) { benchExperiment(b, experiments.E01Deviation) }

func BenchmarkE02AccuracyTradeoff(b *testing.B) {
	benchExperiment(b, experiments.E02AccuracyTradeoff)
}

func BenchmarkE03RecoveryHalving(b *testing.B) {
	benchExperiment(b, experiments.E03RecoveryHalving)
}

func BenchmarkE04RecoveryVsBaselines(b *testing.B) {
	benchExperiment(b, experiments.E04RecoveryVsBaselines)
}

func BenchmarkE05MobileAdversary(b *testing.B) {
	benchExperiment(b, experiments.E05MobileAdversary)
}

func BenchmarkE06ResilienceThreshold(b *testing.B) {
	benchExperiment(b, experiments.E06ResilienceThreshold)
}

func BenchmarkE07TwoClique(b *testing.B) { benchExperiment(b, experiments.E07TwoClique) }

func BenchmarkE08MessageOverhead(b *testing.B) {
	benchExperiment(b, experiments.E08MessageOverhead)
}

func BenchmarkE09Discontinuity(b *testing.B) {
	benchExperiment(b, experiments.E09Discontinuity)
}

func BenchmarkE10EstimationError(b *testing.B) {
	benchExperiment(b, experiments.E10EstimationError)
}

func BenchmarkE11WayOffAblation(b *testing.B) {
	benchExperiment(b, experiments.E11WayOffAblation)
}

func BenchmarkE12DriftDelaySweep(b *testing.B) {
	benchExperiment(b, experiments.E12DriftDelaySweep)
}

func BenchmarkE13ConnectivitySweep(b *testing.B) {
	benchExperiment(b, experiments.E13ConnectivitySweep)
}

func BenchmarkE14SelfStabilization(b *testing.B) {
	benchExperiment(b, experiments.E14SelfStabilization)
}

func BenchmarkE15DriftCompensation(b *testing.B) {
	benchExperiment(b, experiments.E15DriftCompensation)
}

func BenchmarkE16MessageLoss(b *testing.B) {
	benchExperiment(b, experiments.E16MessageLoss)
}

func BenchmarkE17CachedEstimation(b *testing.B) {
	benchExperiment(b, experiments.E17CachedEstimation)
}

func BenchmarkE18ProactiveSecurity(b *testing.B) {
	benchExperiment(b, experiments.E18ProactiveSecurity)
}

func BenchmarkE19TightnessProbe(b *testing.B) {
	benchExperiment(b, experiments.E19TightnessProbe)
}

func BenchmarkE20NetworkOutage(b *testing.B) {
	benchExperiment(b, experiments.E20NetworkOutage)
}

func BenchmarkE21SamplingScaling(b *testing.B) {
	benchExperiment(b, experiments.E21SamplingScaling)
}

// Component microbenchmarks — the protocol's hot paths. The bodies live in
// internal/simbench so cmd/benchsim can run the same code when recording the
// BENCH_sim.json baseline; simbench's tests pin the alloc budgets.

// BenchmarkConvergenceFunction measures the Figure 1 convergence function
// on a 16-processor estimate vector.
func BenchmarkConvergenceFunction(b *testing.B) { simbench.ConvergenceFunction(b) }

// BenchmarkSimulatorEvents measures raw discrete-event throughput.
func BenchmarkSimulatorEvents(b *testing.B) { simbench.SimulatorEvents(b) }

// BenchmarkClusterMinute measures how fast the full stack simulates one
// minute of a cluster (network, estimation, convergence, metrics) at
// several sizes — the simulator's scalability envelope.
func BenchmarkClusterMinute(b *testing.B) {
	for _, n := range []int{7, 16, 64, 256} {
		n := n
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) { simbench.ClusterMinute(b, n) })
	}
}

// BenchmarkClusterMinuteLarge measures the planet-scale regime — fixed
// fault budget f=10, estimation sampled at k=31 peers per round, event queue
// sharded 8 ways — at the sizes where the serial full mesh would be
// quadratically unaffordable. See docs/PERFORMANCE.md, "Scaling the
// simulator".
func BenchmarkClusterMinuteLarge(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		n := n
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) { simbench.ClusterMinuteLarge(b, n, 10, 31, 8) })
	}
}

// BenchmarkCampaignThroughput measures end-to-end randomized-campaign
// throughput — generation, the streaming worker pool and per-run checking.
func BenchmarkCampaignThroughput(b *testing.B) { simbench.CampaignThroughput(b) }
