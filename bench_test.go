package clocksync_test

import (
	"fmt"
	"math/rand"
	"testing"

	"clocksync/internal/core"
	"clocksync/internal/des"
	"clocksync/internal/experiments"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// Experiment benchmarks — one per table/figure of EXPERIMENTS.md. Each
// regenerates the experiment (quick mode) and fails the benchmark if the
// measured results lose the shape the paper predicts. Run
// `go run ./cmd/benchtables` for full-length tables with the printed output.

func benchExperiment(b *testing.B, run func(bool) experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		table := run(true)
		if !table.ChecksPass() {
			b.Fatalf("%s failed its shape checks:\n%s", table.ID, table.String())
		}
	}
}

func BenchmarkE01Deviation(b *testing.B) { benchExperiment(b, experiments.E01Deviation) }

func BenchmarkE02AccuracyTradeoff(b *testing.B) {
	benchExperiment(b, experiments.E02AccuracyTradeoff)
}

func BenchmarkE03RecoveryHalving(b *testing.B) {
	benchExperiment(b, experiments.E03RecoveryHalving)
}

func BenchmarkE04RecoveryVsBaselines(b *testing.B) {
	benchExperiment(b, experiments.E04RecoveryVsBaselines)
}

func BenchmarkE05MobileAdversary(b *testing.B) {
	benchExperiment(b, experiments.E05MobileAdversary)
}

func BenchmarkE06ResilienceThreshold(b *testing.B) {
	benchExperiment(b, experiments.E06ResilienceThreshold)
}

func BenchmarkE07TwoClique(b *testing.B) { benchExperiment(b, experiments.E07TwoClique) }

func BenchmarkE08MessageOverhead(b *testing.B) {
	benchExperiment(b, experiments.E08MessageOverhead)
}

func BenchmarkE09Discontinuity(b *testing.B) {
	benchExperiment(b, experiments.E09Discontinuity)
}

func BenchmarkE10EstimationError(b *testing.B) {
	benchExperiment(b, experiments.E10EstimationError)
}

func BenchmarkE11WayOffAblation(b *testing.B) {
	benchExperiment(b, experiments.E11WayOffAblation)
}

func BenchmarkE12DriftDelaySweep(b *testing.B) {
	benchExperiment(b, experiments.E12DriftDelaySweep)
}

func BenchmarkE13ConnectivitySweep(b *testing.B) {
	benchExperiment(b, experiments.E13ConnectivitySweep)
}

func BenchmarkE14SelfStabilization(b *testing.B) {
	benchExperiment(b, experiments.E14SelfStabilization)
}

func BenchmarkE15DriftCompensation(b *testing.B) {
	benchExperiment(b, experiments.E15DriftCompensation)
}

func BenchmarkE16MessageLoss(b *testing.B) {
	benchExperiment(b, experiments.E16MessageLoss)
}

func BenchmarkE17CachedEstimation(b *testing.B) {
	benchExperiment(b, experiments.E17CachedEstimation)
}

func BenchmarkE18ProactiveSecurity(b *testing.B) {
	benchExperiment(b, experiments.E18ProactiveSecurity)
}

func BenchmarkE19TightnessProbe(b *testing.B) {
	benchExperiment(b, experiments.E19TightnessProbe)
}

func BenchmarkE20NetworkOutage(b *testing.B) {
	benchExperiment(b, experiments.E20NetworkOutage)
}

// Component microbenchmarks — the protocol's hot paths.

// BenchmarkConvergenceFunction measures the Figure 1 convergence function
// on a 16-processor estimate vector.
func BenchmarkConvergenceFunction(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ests := make([]protocol.Estimate, 16)
	for i := range ests {
		ests[i] = protocol.Estimate{
			Peer: i,
			D:    simtime.Duration(rng.NormFloat64()),
			A:    simtime.Duration(rng.Float64() * 0.05),
			OK:   true,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := core.Converge(5, 1, ests); !ok {
			b.Fatal("unexpected unsafe result")
		}
	}
}

// BenchmarkSimulatorEvents measures raw discrete-event throughput.
func BenchmarkSimulatorEvents(b *testing.B) {
	sim := des.New(1)
	var fn func()
	remaining := b.N
	fn = func() {
		remaining--
		if remaining > 0 {
			sim.After(1, fn)
		}
	}
	sim.After(1, fn)
	b.ResetTimer()
	sim.Run()
	if sim.Fired() != uint64(b.N) {
		b.Fatalf("fired %d, want %d", sim.Fired(), b.N)
	}
}

// BenchmarkClusterMinute measures how fast the full stack simulates one
// minute of a cluster (network, estimation, convergence, metrics) at
// several sizes — the simulator's scalability envelope.
func BenchmarkClusterMinute(b *testing.B) {
	for _, n := range []int{7, 16, 64} {
		n := n
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := scenario.Run(scenario.Scenario{
					Name:     "bench",
					Seed:     int64(i),
					N:        n,
					F:        (n - 1) / 3,
					Duration: simtime.Minute,
					Theta:    2 * simtime.Minute,
					Rho:      1e-4,
					SyncInt:  10 * simtime.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
