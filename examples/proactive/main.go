// Proactive security demo — the paper's motivating application (§1).
//
// Proactive secret sharing divides time into epochs; in every epoch the
// share-holders must jointly refresh their shares so that an attacker who
// compromises at most f holders per epoch learns nothing. The refresh
// protocol is driven by local clocks: a holder starts refresh r when its
// clock reads r·EpochLen. If clocks disagree by more than the refresh grace
// window, holders end up in different epochs and the refresh (and hence
// security) breaks.
//
// This demo runs share-holders under a mobile clock-smashing adversary twice
// — once with the paper's Sync protocol disciplining the clocks, once with
// free-running clocks — and reports how many epoch transitions every
// non-faulty holder performed in agreement.
package main

import (
	"fmt"
	"log"
	"math"

	"clocksync"
)

const (
	epochLen = 2 * clocksync.Minute
	grace    = 2 * clocksync.Second // transition window tolerated by refresh
)

func main() {
	fmt.Println("Proactive share-refresh epochs under a mobile adversary")
	fmt.Printf("  epoch length %v, grace window %v, n=7, f=2\n\n", epochLen, grace)

	synced := run(true)
	free := run(false)

	fmt.Printf("  with Sync       %3d/%d epoch transitions agreed by all good holders\n",
		synced.agreed, synced.total)
	fmt.Printf("  free-running    %3d/%d epoch transitions agreed by all good holders\n",
		free.agreed, free.total)
	fmt.Println()
	if synced.agreed == synced.total && free.agreed < free.total {
		fmt.Println("  ✓ synchronized clocks keep every refresh aligned; free-running clocks")
		fmt.Println("    (smashed by the adversary and never corrected) tear the epochs apart —")
		fmt.Println("    exactly why proactive security needs this protocol underneath.")
	} else {
		fmt.Println("  unexpected outcome — inspect the run parameters")
	}
}

type outcome struct {
	agreed, total int
}

// noop is a protocol that never synchronizes — the free-running control.
type noop struct{}

func (noop) Start() {}

// run simulates the cluster and checks epoch agreement at every transition.
func run(withSync bool) outcome {
	n, f := 7, 2
	theta := 3 * clocksync.Minute
	sched := clocksync.RotateAdversary(n, f, clocksync.Time(2*theta),
		30*clocksync.Second, theta, 8,
		func(node int) clocksync.Behavior {
			return clocksync.ClockSmash{Offset: 20 * clocksync.Second, Quiet: true}
		})

	s := clocksync.Scenario{
		Name:         "proactive",
		Seed:         11,
		N:            n,
		F:            f,
		Duration:     90 * clocksync.Minute,
		Theta:        theta,
		Rho:          1e-4,
		Adversary:    sched,
		SamplePeriod: clocksync.Second,
	}
	if !withSync {
		// Free-running clocks: nodes never correct anything. Same network,
		// same adversary, same good-set accounting — only the protocol is
		// absent.
		s.Builder = func(clocksync.BuildContext) clocksync.Starter { return noop{} }
	}
	res, err := clocksync.RunScenario(s)
	if err != nil {
		log.Fatal(err)
	}

	// Holders may legitimately disagree for a grace window around each
	// boundary; everywhere else, all good holders must be in the same epoch.
	// An epoch counts as agreed only if no safely-interior sample shows a
	// split.
	epochOK := map[int64]bool{}
	for _, smp := range res.Recorder.Samples() {
		pos := math.Mod(float64(smp.At), float64(epochLen))
		if pos < float64(grace) || pos > float64(epochLen)-float64(grace) {
			continue // boundary region: disagreement tolerated
		}
		wallEpoch := int64(float64(smp.At) / float64(epochLen))
		if _, seen := epochOK[wallEpoch]; !seen {
			epochOK[wallEpoch] = true
		}
		var ref int64
		first := true
		for i := 0; i < n; i++ {
			if !smp.Good[i] {
				continue
			}
			clockNow := float64(smp.At) + float64(smp.Biases[i])
			e := int64(clockNow / float64(epochLen))
			if first {
				ref, first = e, false
			} else if e != ref {
				epochOK[wallEpoch] = false
			}
		}
	}
	out := outcome{}
	for _, ok := range epochOK {
		out.total++
		if ok {
			out.agreed++
		}
	}
	return out
}
