// Recovery demo: a mobile adversary breaks into processors one after
// another, smashing each clock by minutes. Every victim rejoins within the
// recovery horizon — the paper's headline property — and the demo prints
// each victim's trajectory back into the good range.
package main

import (
	"fmt"
	"log"
	"math"

	"clocksync"
)

func main() {
	n, f := 7, 2
	theta := 3 * clocksync.Minute

	// A rotating adversary: every victim's clock is smashed by ±90 s, far
	// beyond the deviation bound, then released to recover on its own. No
	// fault or recovery detection exists anywhere in the protocol.
	sched := clocksync.RotateAdversary(n, f, clocksync.Time(2*theta),
		30*clocksync.Second, theta, 10,
		func(node int) clocksync.Behavior {
			off := 90 * clocksync.Second
			if node%2 == 1 {
				off = -off
			}
			return clocksync.ClockSmash{Offset: off, Quiet: true}
		})

	res, err := clocksync.RunScenario(clocksync.Scenario{
		Name:      "recovery-demo",
		Seed:      7,
		N:         n,
		F:         f,
		Duration:  90 * clocksync.Minute,
		Theta:     theta,
		Rho:       1e-4,
		Adversary: sched,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Mobile adversary recovery demo")
	fmt.Printf("  %d corruptions over %d processors (f=%d per Θ=%v window)\n\n",
		len(sched.Corruptions), n, f, theta)
	fmt.Println("  node  released at  smashed by   recovered in  (horizon Θ)")
	for _, rv := range res.Report.Recoveries {
		status := "NEVER — bug!"
		if rv.Ok {
			status = fmt.Sprint(rv.Time())
		}
		fmt.Printf("  %4d  %11v  %10v  %12s\n",
			rv.Node, rv.ReleasedAt, rv.InitialDistance, status)
	}

	// The recovery trajectory halves per analysis interval T (Lemma 7(iii)):
	// print the victim-to-good-range distance for the first corruption.
	first := sched.Corruptions[0]
	fmt.Printf("\n  distance of node %d to the good range after release (halving per T=%v):\n",
		first.Node, res.Bounds.T)
	samples := res.Recorder.Samples()
	release := first.To
	for i := 0; i < 8; i++ {
		at := release.Add(clocksync.Duration(i) * res.Bounds.T)
		dist := distanceAt(samples, first.Node, at)
		bar := int(math.Min(60, dist/float64(res.Bounds.MaxDeviation)*2))
		fmt.Printf("    +%dT  %8.3fs  %s\n", i, dist, repeat('#', bar))
	}
	fmt.Printf("\n  max good-set deviation over the whole run: %v (bound %v)\n",
		res.Report.MaxDeviation, res.Bounds.MaxDeviation)
}

// distanceAt finds the victim's distance to the other processors' bias range
// at the sample closest after `at`.
func distanceAt(samples []clocksync.Sample, node int, at clocksync.Time) float64 {
	for _, s := range samples {
		if s.At < at {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, g := range s.Good {
			if !g || i == node {
				continue
			}
			b := float64(s.Biases[i])
			lo = math.Min(lo, b)
			hi = math.Max(hi, b)
		}
		b := float64(s.Biases[node])
		switch {
		case b < lo:
			return lo - b
		case b > hi:
			return b - hi
		default:
			return 0
		}
	}
	return 0
}

func repeat(c byte, n int) string {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return string(out)
}
