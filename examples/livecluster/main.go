// Live cluster demo: four real Sync nodes over UDP loopback, in real time.
// Each node starts with a deliberately wrong clock (up to ±150 ms) and a
// synthetic drift; within a few sync rounds their disciplined clocks agree
// to within a few milliseconds. Messages are HMAC-authenticated.
package main

import (
	"fmt"
	"log"
	"time"

	"clocksync"
)

func main() {
	cluster, err := clocksync.NewLiveCluster(clocksync.LiveClusterConfig{
		N:       4,
		F:       1,
		SyncInt: 500 * time.Millisecond,
		MaxWait: 200 * time.Millisecond,
		WayOff:  2 * time.Second,
		Key:     []byte("livecluster-demo-key"),
		Offsets: []time.Duration{
			-150 * time.Millisecond,
			60 * time.Millisecond,
			0,
			120 * time.Millisecond,
		},
		DriftPPM: []float64{200, -150, 50, -80},
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	fmt.Println("Live UDP cluster: 4 nodes, f=1, HMAC-authenticated, SyncInt=500ms")
	fmt.Println("offsets from host clock (ms):")
	fmt.Printf("%8s  %8s %8s %8s %8s %10s\n", "t", "node0", "node1", "node2", "node3", "spread")
	start := time.Now()
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for i := 0; i < 12; i++ {
		<-ticker.C
		nodes := cluster.Nodes()
		fmt.Printf("%7.1fs  %8.2f %8.2f %8.2f %8.2f %9.2fms\n",
			time.Since(start).Seconds(),
			ms(nodes[0].Offset()), ms(nodes[1].Offset()),
			ms(nodes[2].Offset()), ms(nodes[3].Offset()),
			ms(cluster.Spread()))
	}

	final := cluster.Spread()
	fmt.Printf("\nfinal spread: %.2f ms ", ms(final))
	if final < 25*time.Millisecond {
		fmt.Println("— converged ✓")
	} else {
		fmt.Println("— still settling (loopback jitter); rerun for longer")
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
