// Quickstart: simulate a 7-processor cluster (f=2 Byzantine per period)
// with drifting clocks, run the paper's Sync protocol for a simulated hour,
// and compare the measured deviation against the Theorem 5 bound.
package main

import (
	"fmt"
	"log"

	"clocksync"
)

func main() {
	res, err := clocksync.RunScenario(clocksync.Scenario{
		Name:       "quickstart",
		Seed:       42,
		N:          7,
		F:          2,
		Duration:   clocksync.Hour,
		Theta:      5 * clocksync.Minute,
		Rho:        1e-4,                        // 100 ppm hardware drift
		InitSpread: 500 * clocksync.Millisecond, // clocks start ±250 ms apart
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Clock synchronization with faults and recoveries — quickstart")
	fmt.Printf("  cluster            n=7, f=2, drift 100 ppm, δ=50 ms\n")
	fmt.Printf("  Theorem 5 bound    Δ = %v (K=%d, C=%v)\n",
		res.Bounds.MaxDeviation, res.Bounds.K, res.Bounds.C)
	fmt.Printf("  measured           max deviation %v (%.1f%% of bound)\n",
		res.Report.MaxDeviation,
		100*float64(res.Report.MaxDeviation)/float64(res.Bounds.MaxDeviation))
	fmt.Printf("  clock quality      worst rate error %.2g, largest jump %v\n",
		res.Report.WorstRate, res.Report.MaxDiscontinuity)
	fmt.Printf("  traffic            %d messages for the whole simulated hour\n", res.MsgsSent)

	if res.Report.MaxDeviation <= res.Bounds.MaxDeviation {
		fmt.Println("  ✓ synchronization guarantee held")
	} else {
		fmt.Println("  ✗ deviation exceeded the bound — this should never happen")
	}
}
