package clocksync

import (
	"clocksync/internal/adversary"
	"clocksync/internal/metrics"
	"clocksync/internal/network"
	"clocksync/internal/protocol"
	"clocksync/internal/scenario"
	"clocksync/internal/simtime"
)

// Measurement types produced by a run.
type (
	// Report condenses a run: worst deviation, discontinuity, clock rates
	// and per-release recovery records.
	Report = metrics.Report
	// Recovery describes how one released processor rejoined.
	Recovery = metrics.Recovery
	// Sample is one measurement instant: biases, the good set, and the
	// good-set deviation.
	Sample = metrics.Sample
)

// Adversary schedule types (Definition 2): a Schedule lists break-ins; it is
// validated to be f-limited with respect to Θ before a run.
type (
	// Schedule is a set of corruptions — the static description of a mobile
	// adversary strategy.
	Schedule = adversary.Schedule
	// Corruption is one break-in window with the behavior driving the
	// victim.
	Corruption = adversary.Corruption
	// Behavior scripts a corrupted processor.
	Behavior = protocol.Behavior
)

// RotateAdversary builds an f-limited rotating corruption schedule over all
// n processors: the unbounded-total-faults workload of the paper.
func RotateAdversary(n, f int, start Time, dwell, theta Duration, events int, mk func(node int) Behavior) Schedule {
	return adversary.Rotate(n, f, start, dwell, theta, events, mk)
}

// StaticAdversary corrupts a fixed set of nodes for [from, to).
func StaticAdversary(nodes []int, from, to Time, mk func(node int) Behavior) Schedule {
	return adversary.Static(nodes, from, to, mk)
}

// Byzantine behaviors for corrupted processors.
type (
	// Crash keeps the victim silent.
	Crash = adversary.Crash
	// ClockSmash rewrites the victim's clock by Offset on break-in.
	ClockSmash = adversary.ClockSmash
	// RandomLiar answers with uniformly noisy clock readings.
	RandomLiar = adversary.RandomLiar
	// ConsistentLiar reports real time plus a fixed offset to everyone.
	ConsistentLiar = adversary.ConsistentLiar
	// SplitBrain reports different clocks to different halves of the
	// cluster — the attack that exhibits the n ≥ 3f+1 threshold.
	SplitBrain = adversary.SplitBrain
)

// Network topologies and delay models.
type (
	// Topology describes which processors share links.
	Topology = network.Topology
	// DelayModel samples per-message one-way latency.
	DelayModel = network.DelayModel
	// ConstantDelay delivers after a fixed latency.
	ConstantDelay = network.ConstantDelay
	// UniformDelay samples latency uniformly from [Min, Max].
	UniformDelay = network.UniformDelay
	// SpikyDelay adds occasional latency spikes — the workload where
	// min-RTT-of-k estimation pays off.
	SpikyDelay = network.SpikyDelay
)

// NewFullMesh returns the complete topology on n processors (the paper's
// main model).
func NewFullMesh(n int) Topology { return network.NewFullMesh(n) }

// NewTwoCliques builds the §5 counterexample graph on 6f+2 processors.
func NewTwoCliques(f int) Topology { return network.NewTwoCliques(f) }

// NewUniformDelay validates and returns a uniform latency model.
func NewUniformDelay(min, max Duration) UniformDelay {
	return network.NewUniformDelay(min, max)
}

// Seconds converts a float64 second count to a Duration.
func Seconds(s float64) Duration { return simtime.Duration(s) }

// Builder constructs the protocol node for one processor; Starter is the
// node it returns. Scenarios default to the paper's Sync protocol — set a
// Builder to run a custom or null protocol instead.
type (
	// Builder constructs one processor's protocol node.
	Builder = scenario.Builder
	// BuildContext is what a Builder receives.
	BuildContext = scenario.BuildContext
	// Starter is a protocol node ready to run.
	Starter = scenario.Starter
)
